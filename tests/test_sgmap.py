"""Scatter/gather map tests (section 2.2's virtual-address DMA)."""

import pytest

from repro.driver.config import DriverConfig
from repro.host import AddressSpace
from repro.hw import DS5000_200, HostCPU, MemorySystem, PhysicalMemory, \
    TurboChannel
from repro.hw.sgmap import ScatterGatherMap
from repro.net import Host
from repro.sim import SimulationError, Simulator, spawn


def _rig():
    sim = Simulator()
    mem = PhysicalMemory(16 * 1024 * 1024, 4096,
                         reserved_bytes=2 * 1024 * 1024)
    tc = TurboChannel(sim, DS5000_200.bus)
    cpu = HostCPU(sim, DS5000_200, MemorySystem(sim, DS5000_200, tc))
    space = AddressSpace(mem, "t")
    sgmap = ScatterGatherMap(sim, cpu)
    return sim, mem, space, sgmap


def test_load_gives_contiguous_io_window():
    sim, mem, space, sgmap = _rig()
    vaddr = space.alloc(3 * 4096, align_page=True)
    space.write(vaddr, b"scattered" * 1000)
    result = {}

    def rig():
        mapping = yield from sgmap.load(space, vaddr, 3 * 4096)
        result["m"] = mapping

    spawn(sim, rig())
    sim.run()
    mapping = result["m"]
    assert mapping.entries == 3
    assert mapping.length == 3 * 4096
    # Physically scattered, I/O-virtually contiguous: translation of
    # consecutive io pages hits the right (non-adjacent) frames.
    for i in range(3):
        io = mapping.io_addr + i * 4096
        assert sgmap.translate(io) == space.translate(vaddr + i * 4096)


def test_translation_preserves_in_page_offsets():
    sim, mem, space, sgmap = _rig()
    vaddr = space.alloc(5000, offset=300)
    result = {}

    def rig():
        result["m"] = yield from sgmap.load(space, vaddr, 5000)

    spawn(sim, rig())
    sim.run()
    mapping = result["m"]
    assert mapping.io_addr % 4096 == vaddr % 4096
    assert sgmap.translate(mapping.io_addr) == space.translate(vaddr)
    mid = 2500
    assert sgmap.translate(mapping.io_addr + mid) == \
        space.translate(vaddr + mid)


def test_load_charges_per_page_time():
    """The paper's caveat: per-page work survives virtual DMA."""
    sim, mem, space, sgmap = _rig()
    small = space.alloc(4096, align_page=True)
    big = space.alloc(16 * 4096, align_page=True)
    times = {}

    def rig():
        start = sim.now
        yield from sgmap.load(space, small, 4096)
        times["small"] = sim.now - start
        start = sim.now
        yield from sgmap.load(space, big, 16 * 4096)
        times["big"] = sim.now - start

    spawn(sim, rig())
    sim.run()
    assert times["big"] == pytest.approx(16 * times["small"], rel=0.01)


def test_unload_frees_entries():
    sim, mem, space, sgmap = _rig()
    vaddr = space.alloc(2 * 4096, align_page=True)
    result = {}

    def rig():
        result["m"] = yield from sgmap.load(space, vaddr, 2 * 4096)

    spawn(sim, rig())
    sim.run()
    assert sgmap.entries_in_use == 2
    sgmap.unload(result["m"])
    assert sgmap.entries_in_use == 0
    with pytest.raises(SimulationError):
        sgmap.translate(result["m"].io_addr)


def test_map_capacity_enforced():
    sim, mem, space, sgmap = _rig()
    sgmap.capacity = 2
    vaddr = space.alloc(3 * 4096, align_page=True)

    def rig():
        yield from sgmap.load(space, vaddr, 3 * 4096)

    spawn(sim, rig())
    with pytest.raises(SimulationError):
        sim.run()


def test_driver_with_sg_map_uses_one_descriptor_per_segment():
    """A 16 KB page-aligned message: ~5 physical buffers without the
    map, 1 data descriptor (+1 header) with it."""
    def send_one(use_sg_map):
        sim = Simulator()
        config = DriverConfig(use_sg_map=use_sg_map)
        host = Host(sim, DS5000_200, config=config)
        host.connect(link=None, deliver=lambda c: None)
        app, path = host.open_udp_path(local_port=7, remote_port=9)

        def go():
            yield from app.send_message(b"\x11" * 16 * 1024,
                                        align_page=True)

        spawn(sim, go(), "s")
        sim.run()
        return host

    plain = send_one(False)
    mapped = send_one(True)
    assert mapped.board.kernel_channel.tx_queue.pushes < \
        plain.board.kernel_channel.tx_queue.pushes
    # And the data still left the board intact (cells carried the
    # right number of bytes through the translated reads).
    assert mapped.txp.cells_sent == plain.txp.cells_sent
    assert mapped.driver.sgmap.loads >= 2  # per fragment segments


def test_sg_map_data_fidelity_end_to_end():
    """Cells DMAed through the map must carry the real message bytes."""
    from repro.atm import Reassembler

    sim = Simulator()
    config = DriverConfig(use_sg_map=True)
    host = Host(sim, DS5000_200, config=config)
    cells = []
    host.connect(link=None, deliver=cells.append)
    app, path = host.open_raw_path()
    payload = bytes(range(256)) * 32  # 8 KB across scattered frames

    def go():
        yield from app.send_message(payload)

    spawn(sim, go(), "s")
    sim.run()
    reasm = Reassembler(path.vci)
    out = None
    for cell in cells:
        got = reasm.push(cell)
        if got is not None:
            out = got
    assert out == payload

"""Clos and torus fabrics end-to-end: conservation, sharding, CLI.

The acceptance contract for the multi-topology fabric: a workload
over any generated shape conserves cells, the sharded run is
byte-identical to the single-process run at every shard count, the
CLI surface drives both shapes, and fault sites are addressable by
topology coordinate names.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.cluster.sharded import ShardFabric, run_cluster_sharded
from repro.faults import FaultPlan
from repro.hw.specs import DS5000_200
from repro.sim import SimulationError

CLOS_KW = dict(machines=DS5000_200, n_hosts=8, topology="clos", pods=4)
TORUS_KW = dict(machines=DS5000_200, n_hosts=8, topology="torus",
                torus_dims=(2, 2, 2))


def _spec(pattern="pairs"):
    return WorkloadSpec(pattern=pattern, kind="open", seed=1,
                        message_bytes=2048, messages_per_client=2,
                        requests_per_client=2)


_BASELINES: dict = {}


def _baseline(kw, pattern) -> str:
    key = (kw["topology"], pattern)
    if key not in _BASELINES:
        fabric = Fabric(**kw)
        workload = run_workload(fabric, _spec(pattern))
        report = collect(fabric, workload)
        assert report.conservation["holds"]
        _BASELINES[key] = report.to_json()
    return _BASELINES[key]


@pytest.mark.parametrize("kw", (CLOS_KW, TORUS_KW),
                         ids=("clos", "torus"))
@pytest.mark.parametrize("pattern", ("incast", "pairs"))
def test_conservation_holds(kw, pattern):
    report = json.loads(_baseline(kw, pattern))
    cons = report["conservation"]
    assert cons["holds"]
    assert cons["delivered"] > 0
    assert report["topology"] == kw["topology"]


@pytest.mark.parametrize("kw", (CLOS_KW, TORUS_KW),
                         ids=("clos", "torus"))
@pytest.mark.parametrize("n_shards", (1, 2, 4))
def test_sharded_byte_identical(kw, n_shards):
    report, _run = run_cluster_sharded(kw, _spec("pairs"), n_shards,
                                       backend="thread")
    assert report.to_json() == _baseline(kw, "pairs")


def test_sharded_byte_identical_under_faults():
    kw = dict(CLOS_KW,
              faults=FaultPlan.parse("loss=0.01,port=1:0:1@500",
                                     seed=3))
    fabric = Fabric(**kw)
    workload = run_workload(fabric, _spec("incast"))
    plain = collect(fabric, workload).to_json()
    for n_shards in (2, 4):
        report, _run = run_cluster_sharded(kw, _spec("incast"),
                                           n_shards, backend="thread")
        assert report.to_json() == plain


def test_multihop_paths_cross_spines():
    """A Clos incast (every leaf talking to leaf 0) must actually
    transit the spine stage -- otherwise the topology is decorative.
    (Pairs adjacency stays intra-leaf by construction.)"""
    fabric = Fabric(**CLOS_KW)
    run_workload(fabric, _spec("incast"))
    spine_cells = sum(
        sw.cells_switched for sw in fabric.switches
        if sw.name.startswith("spine"))
    assert spine_cells > 0


def test_sharding_rejects_only_direct():
    with pytest.raises(SimulationError):
        ShardFabric(0, 2, machines=DS5000_200, n_hosts=2,
                    topology="direct")
    # Clos and torus shard fine (construction only).
    ShardFabric(0, 2, **CLOS_KW)
    ShardFabric(1, 2, **TORUS_KW)


def test_symbolic_fault_addressing():
    from repro.topology import build_spec
    names = build_spec("clos", 8, pods=4).name_table()
    plan = FaultPlan.parse("port=spine0:0:1@500", switch_names=names)
    assert plan.port_kills[0].switch == names["spine0"]
    # Numeric addressing still parses without a name table.
    plan = FaultPlan.parse("port=0:0:1@500")
    assert plan.port_kills[0].switch == 0
    with pytest.raises(ValueError):
        FaultPlan.parse("port=nosuch:0:1@500", switch_names=names)


@pytest.mark.parametrize("argv", (
    ["cluster", "--topology", "clos", "--pods", "4", "--hosts", "8",
     "--messages", "2", "--json"],
    ["cluster", "--topology", "torus", "--dims", "2,2,2", "--hosts", "8",
     "--messages", "2", "--json"],
), ids=("clos", "torus"))
def test_cli_topologies(argv, capsys):
    assert cli_main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["topology"] == argv[2]
    assert report["conservation"]["holds"]


def test_cli_symbolic_fault(capsys):
    argv = ["cluster", "--topology", "torus", "--dims", "2,2,2",
            "--hosts", "8", "--messages", "2", "--json",
            "--faults", "port=t0.0.1:0:1@400"]
    assert cli_main(argv) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["conservation"]["holds"]
    assert report["faults"]["plan"]["port_kills"][0]["switch"] == 1

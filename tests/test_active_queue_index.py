"""ActiveQueueIndex: the O(1) per-VCI queue manager, in isolation.

Semantics first -- round-robin fairness, FIFO arrival order, the
longest-queue/drop-tail push-out protocol, lazy ring deletion -- then
the scaling property the benchmark enforces end-to-end: no operation
may walk the VCI table, so a drain over 10^5 queues costs the same
per cell as a drain over 10^3 (checked by operation counting here,
by wall clock in ``benchmarks/bench_topology.py``).
"""

from repro.topology import ActiveQueueIndex


def _drain_rr(index):
    out = []
    while True:
        popped = index.pop_rr()
        if popped is None:
            return out
        out.append(popped)


def test_rr_interleaves_vcis():
    index = ActiveQueueIndex()
    for n in range(3):
        for vci in (7, 9):
            index.enqueue(vci, f"c{vci}.{n}")
    assert [v for v, _ in _drain_rr(index)] == [7, 9, 7, 9, 7, 9]
    assert index.depth == 0


def test_rr_preserves_per_vci_order():
    index = ActiveQueueIndex()
    for n in range(4):
        index.enqueue(5, n)
    assert [cell for _, cell in _drain_rr(index)] == [0, 1, 2, 3]


def test_fifo_preserves_global_arrival_order():
    index = ActiveQueueIndex()
    arrivals = [(7, "a"), (9, "b"), (7, "c"), (8, "d"), (9, "e")]
    for vci, cell in arrivals:
        index.enqueue(vci, cell, fifo=True)
    drained = []
    while True:
        popped = index.pop_fifo()
        if popped is None:
            break
        drained.append(popped)
    assert drained == arrivals
    assert index.depth == 0


def test_enqueue_returns_backlog_and_tracks_depth():
    index = ActiveQueueIndex()
    assert index.enqueue(3, "x") == 1
    assert index.enqueue(3, "y") == 2
    assert index.enqueue(4, "z") == 1
    assert index.depth == 3
    assert index.queue_len(3) == 2
    assert index.queue_len(99) == 0


def test_longest_tracks_maximum_and_ties_break_earliest():
    index = ActiveQueueIndex()
    assert index.longest() is None
    index.enqueue(1, "a")
    index.enqueue(2, "b")
    index.enqueue(2, "c")
    assert index.longest() == (2, 2)
    # VCI 1 catches up: 2 reached length 2 first, so 2 stays victim.
    index.enqueue(1, "d")
    assert index.longest() == (2, 2)
    # VCI 1 pulls ahead.
    index.enqueue(1, "e")
    assert index.longest() == (1, 3)


def test_drop_tail_removes_newest_and_reindexes():
    index = ActiveQueueIndex()
    for n in range(3):
        index.enqueue(6, n)
    index.enqueue(8, "x")
    assert index.drop_tail(6) == 2
    assert index.longest() == (6, 2)
    assert index.depth == 3
    # Draining still yields 6's remaining cells in order.
    drained = _drain_rr(index)
    assert [cell for v, cell in drained if v == 6] == [0, 1]


def test_pushout_to_empty_leaves_ring_consistent():
    """A queue emptied by push-out leaves a stale ring entry; the
    next rotation must discard it without yielding a phantom cell,
    and a re-enqueue of that VCI must not duplicate its ring slot."""
    index = ActiveQueueIndex()
    index.enqueue(5, "only")
    index.enqueue(7, "other")
    assert index.drop_tail(5) == "only"
    assert index.queue_len(5) == 0
    index.enqueue(5, "again")
    assert _drain_rr(index) == [(7, "other"), (5, "again")]


def test_maxlen_steps_down_through_gaps():
    index = ActiveQueueIndex()
    for n in range(5):
        index.enqueue(1, n)
    index.enqueue(2, "a")
    for _ in range(4):
        index.drop_tail(1)
    assert index.longest() == (1, 1) or index.longest() == (2, 1)
    assert index.longest()[1] == 1


def test_operations_never_scale_with_vci_count():
    """Every drain/push-out step touches O(1) bookkeeping: after
    loading V queues, one pop_rr plus one longest+drop_tail must not
    enumerate the table.  Guarded structurally: the occupancy index
    holds one bucket (all queues same length), and popping shrinks
    only that bucket by one entry."""
    index = ActiveQueueIndex()
    v_count = 50_000
    for vci in range(v_count):
        index.enqueue(vci, vci)
    assert len(index._buckets) == 1
    assert index.longest() == (0, 1)
    vci, cell = index.pop_rr()
    assert (vci, cell) == (0, 0)
    assert len(index._buckets[1]) == v_count - 1
    victim, length = index.longest()
    assert length == 1
    index.drop_tail(victim)
    assert index.depth == v_count - 2

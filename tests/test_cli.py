"""CLI tests."""

import json

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("table1", "figure2", "figure3", "figure4", "all",
                    "cluster", "latency", "receive", "transmit"):
        args = parser.parse_args(
            [command] if command in ("table1", "figure2", "figure3",
                                     "figure4", "all", "cluster")
            else [command, "--machine", "ds"])
        assert args.command == command


def test_latency_command_prints_result(capsys):
    assert main(["latency", "--machine", "ds", "--size", "1",
                 "--protocol", "atm"]) == 0
    out = capsys.readouterr().out
    assert "DECstation 5000/200" in out
    assert "us round trip" in out


def test_receive_command_with_double_cell(capsys):
    assert main(["receive", "--machine", "alpha", "--size", "4096",
                 "--dma", "double"]) == 0
    out = capsys.readouterr().out
    assert "Mbps" in out


def test_transmit_command(capsys):
    assert main(["transmit", "--machine", "ds", "--size", "8192"]) == 0
    assert "transmit" in capsys.readouterr().out


def test_table1_quick(capsys):
    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Round-Trip Latencies" in out
    assert "(paper)" in out


def test_figure_custom_sizes(capsys):
    assert main(["figure4", "--sizes", "4,16"]) == 0
    out = capsys.readouterr().out
    assert "transmit-side throughput" in out
    assert "3000/600" in out


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["latency", "--machine", "vax"])


CLUSTER_ARGS = ["cluster", "--hosts", "4", "--pattern", "pairs",
                "--messages", "2", "--size", "2048", "--rate", "40",
                "--seed", "1", "--json"]


def test_cluster_command_emits_valid_report(capsys):
    assert main(CLUSTER_ARGS) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["n_hosts"] == 4
    assert report["conservation"]["holds"] is True
    assert report["workload"]["messages_received"] == \
        report["workload"]["messages_sent"]
    assert len(report["hosts"]) == 4
    assert report["switches"][0]["ports"]


def test_cluster_json_is_deterministic(capsys):
    assert main(CLUSTER_ARGS) == 0
    first = capsys.readouterr().out
    assert main(CLUSTER_ARGS) == 0
    assert capsys.readouterr().out == first


CREDIT_ARGS = ["cluster", "--hosts", "4", "--pattern", "incast",
               "--messages", "3", "--size", "4096",
               "--backpressure", "credit", "--seed", "1", "--json"]


def test_cluster_credit_json_deterministic_and_lossless(capsys):
    """The acceptance run: credit-mode incast is deterministic for a
    fixed seed, reports zero queue-full drops, and the conservation
    identity holds with the stall/credit counters included."""
    assert main(CREDIT_ARGS) == 0
    first = capsys.readouterr().out
    assert main(CREDIT_ARGS) == 0
    assert capsys.readouterr().out == first
    report = json.loads(first)
    assert report["conservation"]["holds"] is True
    assert report["drops"]["queue_full"] == 0
    bp = report["backpressure"]
    assert bp["mode"] == "credit"
    assert all(h["credits_outstanding"] == 0 for h in bp["hosts"])


def test_cluster_sweep_renders_curve(capsys):
    assert main(["cluster", "--hosts", "4", "--pattern", "incast",
                 "--messages", "2", "--sweep", "10,40", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert [p["offered_mbps_per_client"] for p in doc["points"]] == \
        [10.0, 40.0]
    assert all("goodput_mbps" in p for p in doc["points"])


def test_cluster_rpc_render(capsys):
    assert main(["cluster", "--hosts", "3", "--workload", "rpc",
                 "--messages", "2"]) == 0
    out = capsys.readouterr().out
    assert "conservation holds" in out
    assert "latency us" in out


def test_table1_json_output(capsys):
    assert main(["table1", "--quick", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["table"] == "table1"
    assert set(doc["measured"]) == set(doc["paper"])


def test_figure_json_output(capsys):
    assert main(["figure4", "--sizes", "4", "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["unit"] == "Mbps"
    assert doc["sizes_kb"] == [4]
    assert doc["paper_peaks"]

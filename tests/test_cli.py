"""CLI tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in ("table1", "figure2", "figure3", "figure4", "all",
                    "latency", "receive", "transmit"):
        args = parser.parse_args(
            [command] if command in ("table1", "figure2", "figure3",
                                     "figure4", "all")
            else [command, "--machine", "ds"])
        assert args.command == command


def test_latency_command_prints_result(capsys):
    assert main(["latency", "--machine", "ds", "--size", "1",
                 "--protocol", "atm"]) == 0
    out = capsys.readouterr().out
    assert "DECstation 5000/200" in out
    assert "us round trip" in out


def test_receive_command_with_double_cell(capsys):
    assert main(["receive", "--machine", "alpha", "--size", "4096",
                 "--dma", "double"]) == 0
    out = capsys.readouterr().out
    assert "Mbps" in out


def test_transmit_command(capsys):
    assert main(["transmit", "--machine", "ds", "--size", "8192"]) == 0
    assert "transmit" in capsys.readouterr().out


def test_table1_quick(capsys):
    assert main(["table1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Round-Trip Latencies" in out
    assert "(paper)" in out


def test_figure_custom_sizes(capsys):
    assert main(["figure4", "--sizes", "4,16"]) == 0
    out = capsys.readouterr().out
    assert "transmit-side throughput" in out
    assert "3000/600" in out


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["latency", "--machine", "vax"])

"""Sharded runs must be byte-identical to the single-process run.

The contract under test: for any shard count, backend, workload
pattern, and backpressure mode, ``run_cluster_sharded`` produces a
:class:`ClusterReport` whose canonical JSON equals the plain
``Fabric`` run's, byte for byte.  The comparison covers every counter
in the report -- per-host stats, per-port switch stats, gate stalls,
latency percentiles -- so any divergence in event ordering anywhere
in the model shows up here.

A sampled matrix keeps the runtime sane; the full sweep lives in
``benchmarks/bench_cluster_scale.py``, which re-checks identity on
every benchmark run.
"""

import pytest

from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.cluster.sharded import ShardFabric, run_cluster_sharded
from repro.hw.specs import DS5000_200
from repro.sim import SimulationError


def _kwargs(backpressure, n_hosts=4, n_switches=1, **extra):
    return dict(machines=DS5000_200, n_hosts=n_hosts,
                n_switches=n_switches, backpressure=backpressure,
                credit_window_cells=64, drain_policy="rr", **extra)


def _spec(pattern, kind="open"):
    return WorkloadSpec(pattern=pattern, kind=kind, seed=1,
                        message_bytes=2048, messages_per_client=2,
                        requests_per_client=2)


_BASELINES: dict = {}


def _baseline_json(backpressure, pattern, kind="open",
                   n_switches=1) -> str:
    cache_key = (backpressure, pattern, kind, n_switches)
    if cache_key not in _BASELINES:
        fabric = Fabric(**_kwargs(backpressure, n_switches=n_switches))
        workload = run_workload(fabric, _spec(pattern, kind))
        _BASELINES[cache_key] = collect(fabric, workload).to_json()
    return _BASELINES[cache_key]


@pytest.mark.parametrize("backend", ("proc", "thread"))
@pytest.mark.parametrize("n_shards", (2, 4))
@pytest.mark.parametrize("pattern", ("incast", "pairs", "all2all"))
@pytest.mark.parametrize("backpressure", ("credit", "efci"))
def test_sharded_report_byte_identical(backpressure, pattern, n_shards,
                                       backend):
    report, _run = run_cluster_sharded(
        _kwargs(backpressure), _spec(pattern), n_shards,
        backend=backend)
    assert report.to_json() == _baseline_json(backpressure, pattern)


def test_inline_backend_identical_without_backpressure():
    report, _run = run_cluster_sharded(
        _kwargs("none"), _spec("incast"), 2, backend="inline")
    assert report.to_json() == _baseline_json("none", "incast")


# -- coalescing / transport axis ----------------------------------------------
#
# The window schedule and the wire encoding must both be invisible:
# any (coalesce, transport) combination yields the same bytes as the
# plain run.  all2all crosses every min-cut, so the struct transport
# actually carries cells here; pairs colocates every flow, so the
# coalesced run collapses to a single window.

@pytest.mark.parametrize("transport", ("struct", "pickle"))
@pytest.mark.parametrize("coalesce", (True, False))
def test_coalesce_transport_matrix_byte_identical(coalesce, transport):
    report, _run = run_cluster_sharded(
        _kwargs("credit"), _spec("all2all"), 2, backend="thread",
        coalesce=coalesce, transport=transport)
    assert report.to_json() == _baseline_json("credit", "all2all")


def test_colocated_flows_coalesce_to_one_window():
    runs = {}
    for coalesce in (True, False):
        report, run = run_cluster_sharded(
            _kwargs("credit"), _spec("pairs"), 2, backend="inline",
            coalesce=coalesce)
        assert report.to_json() == _baseline_json("credit", "pairs")
        runs[coalesce] = run
    # Min-cut sharding keeps every pairs flow on one shard: no shard
    # can ever emit a boundary message, so the whole run is a single
    # unbounded window instead of one barrier per lookahead.
    assert runs[True].windows == 1
    assert runs[True].boundary_msgs == 0
    assert runs[True].boundary_bytes == 0
    assert runs[False].windows > 10 * runs[True].windows


def test_crossing_flows_report_boundary_traffic():
    _report, struct_run = run_cluster_sharded(
        _kwargs("credit"), _spec("all2all"), 2, backend="inline",
        transport="struct")
    _report, pickle_run = run_cluster_sharded(
        _kwargs("credit"), _spec("all2all"), 2, backend="inline",
        transport="pickle")
    assert struct_run.boundary_msgs == pickle_run.boundary_msgs > 0
    assert 0 < struct_run.boundary_bytes < pickle_run.boundary_bytes


def test_transport_rejects_unknown_name():
    with pytest.raises(SimulationError, match="transport"):
        run_cluster_sharded(_kwargs("none"), _spec("pairs"), 2,
                            transport="json")


def test_rpc_workload_identical_across_two_switches():
    report, _run = run_cluster_sharded(
        _kwargs("credit", n_switches=2), _spec("pairs", kind="rpc"), 3,
        backend="proc")
    assert report.to_json() == _baseline_json(
        "credit", "pairs", kind="rpc", n_switches=2)


def test_merged_conservation_holds_and_fabric_is_quiescent():
    # Conservation is only globally meaningful at a barrier; the merge
    # runs at global quiescence, where every mailbox and inter-switch
    # hop has drained, so queued must be exactly zero and the identity
    # must close without slack.
    report, run = run_cluster_sharded(
        _kwargs("credit"), _spec("all2all"), 4, backend="thread")
    conservation = report.conservation
    assert conservation["holds"]
    assert conservation["queued"] == 0
    assert (conservation["injected"]
            == conservation["delivered"] + conservation["dropped"])
    assert run.t_end == report.sim_time_us
    # Partial snapshots must agree that nothing is in flight.
    for partial in run.partials:
        assert partial["isw_in_flight"] == 0
        assert partial["uplink_cells_sent"] >= 0


def test_events_processed_matches_plain_run():
    fabric = Fabric(**_kwargs("credit"))
    run_workload(fabric, _spec("pairs"))
    _report, run = run_cluster_sharded(
        _kwargs("credit"), _spec("pairs"), 2, backend="inline")
    assert run.events_processed == fabric.sim.events_processed


# -- fault-plan axis ----------------------------------------------------------
#
# Fault decisions are content-addressed (seed, site, per-site cell
# index), never drawn from shared call-order RNG, so every loss, bit
# flip, flap, kill, and eaten credit cell must land identically no
# matter how the hosts are sharded.

_FAULT_SPECS = {
    "loss-corrupt": "loss=0.01,corrupt=0.002",
    "flap-kill": "flap=1:1@100+80,kill=2:0@200",
    "credit-loss": "loss=0.01,credit-loss=0.1",
}

_FAULT_BASELINES: dict = {}


def _fault_kwargs(spec_name):
    from repro.faults import FaultPlan
    return _kwargs("credit", faults=FaultPlan.parse(
        _FAULT_SPECS[spec_name], seed=1), credit_regen_timeout_us=500.0)


@pytest.mark.parametrize("backend", ("proc", "thread"))
@pytest.mark.parametrize("faultspec", sorted(_FAULT_SPECS))
def test_sharded_identical_under_faults(faultspec, backend):
    if faultspec not in _FAULT_BASELINES:
        fabric = Fabric(**_fault_kwargs(faultspec))
        workload = run_workload(fabric, _spec("all2all"))
        _FAULT_BASELINES[faultspec] = collect(fabric, workload).to_json()
    report, _run = run_cluster_sharded(
        _fault_kwargs(faultspec), _spec("all2all"), 2, backend=backend)
    assert report.to_json() == _FAULT_BASELINES[faultspec]


def test_sharding_rejects_direct_topology_and_zero_lookahead():
    with pytest.raises(SimulationError, match="switched"):
        ShardFabric(0, 2, machines=[DS5000_200, DS5000_200],
                    topology="direct")
    with pytest.raises(SimulationError, match="lookahead"):
        ShardFabric(0, 2, **_kwargs("none"), prop_delay_us=0.0)
    with pytest.raises(SimulationError, match="shard index"):
        ShardFabric(5, 2, **_kwargs("none"))
    with pytest.raises(SimulationError, match="backend"):
        run_cluster_sharded(_kwargs("none"), _spec("pairs"), 2,
                            backend="mpi")

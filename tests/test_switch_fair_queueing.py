"""Switch-level regressions: per-VCI fair queueing, drop accounting,
cross-traffic edge cases, and the striping-width guard."""

import pytest

from repro.atm.cell import Cell
from repro.atm.switch import CellSwitch
from repro.cluster import Fabric
from repro.hw import DS5000_200
from repro.sim import SimulationError, Simulator, spawn


def _single_port_switch(sim, drain_policy="rr", **kw):
    """One trunk, one lane, collecting delivered VCIs in order."""
    sw = CellSwitch(sim, drain_policy=drain_policy, **kw)
    order = []
    sw.add_trunk(0, lambda cell: order.append(cell.vci), n_lanes=1)
    sw.add_route(10, 0)
    sw.add_route(20, 0)
    return sw, order


def test_rr_drain_interleaves_flows():
    """A backlogged hog no longer serializes ahead of a light flow:
    round-robin alternates VCIs, so the light flow's two cells leave
    within its first two turns."""
    sim = Simulator()
    sw, order = _single_port_switch(sim, drain_policy="rr")
    for _ in range(6):
        sw.input_cell(Cell(vci=10, payload=b""))
    for _ in range(2):
        sw.input_cell(Cell(vci=20, payload=b""))
    sim.run()
    assert sorted(order) == [10] * 6 + [20] * 2
    assert order.index(20) <= 1 or order[1] == 20
    assert max(i for i, v in enumerate(order) if v == 20) <= 3


def test_fifo_drain_serializes_behind_backlog():
    """The comparison policy: a shared FIFO makes the light flow wait
    out the hog's entire backlog."""
    sim = Simulator()
    sw, order = _single_port_switch(sim, drain_policy="fifo")
    for _ in range(6):
        sw.input_cell(Cell(vci=10, payload=b""))
    for _ in range(2):
        sw.input_cell(Cell(vci=20, payload=b""))
    sim.run()
    assert order == [10] * 6 + [20] * 2


def test_full_port_pushes_out_longest_backlog():
    """Fair buffer sharing under rr: when the port is full, an arrival
    from a light flow evicts the tail of the longest backlog instead
    of being tail-dropped."""
    sim = Simulator()
    sw, _ = _single_port_switch(sim, drain_policy="rr",
                                port_queue_cells=8)
    for _ in range(8):
        sw.input_cell(Cell(vci=10, payload=b""))
    sw.input_cell(Cell(vci=20, payload=b""))
    stats = sw.port_stats()[0]
    assert stats.depth == 8              # cap respected, not exceeded
    assert sw.dropped_queue_full == 1
    assert stats.vcis[10]["dropped"] == 1   # the hog paid
    assert stats.vcis[20]["enqueued"] == 1  # the light flow got in


def test_full_port_fifo_drops_the_arrival():
    sim = Simulator()
    sw, _ = _single_port_switch(sim, drain_policy="fifo",
                                port_queue_cells=8)
    for _ in range(8):
        sw.input_cell(Cell(vci=10, payload=b""))
    sw.input_cell(Cell(vci=20, payload=b""))
    stats = sw.port_stats()[0]
    assert stats.depth == 8
    assert sw.dropped_queue_full == 1
    assert stats.vcis[20]["dropped"] == 1   # the arrival paid


def test_push_out_never_evicts_a_shorter_queue():
    """When the arriving flow already owns the longest backlog, the
    arrival itself is dropped -- eviction must not punish light
    flows."""
    sim = Simulator()
    sw, _ = _single_port_switch(sim, drain_policy="rr",
                                port_queue_cells=8)
    for _ in range(7):
        sw.input_cell(Cell(vci=10, payload=b""))
    sw.input_cell(Cell(vci=20, payload=b""))
    sw.input_cell(Cell(vci=10, payload=b""))  # hog arrival, port full
    stats = sw.port_stats()[0]
    assert stats.depth == 8
    assert stats.vcis[10]["dropped"] == 1
    assert stats.vcis[20]["dropped"] == 0


# -- drop accounting ---------------------------------------------------------


def test_drop_split_no_route_vs_queue_full():
    sim = Simulator()
    sw, _ = _single_port_switch(sim, drain_policy="fifo",
                                port_queue_cells=4)
    sw.input_cell(Cell(vci=999, payload=b""))       # no route
    for _ in range(5):                              # one over the cap
        sw.input_cell(Cell(vci=10, payload=b""))
    assert sw.dropped_no_route == 1
    assert sw.dropped_queue_full == 1
    assert sw.cells_dropped == 2                    # the compat sum


def test_fabric_conservation_with_unrouted_vci():
    """A VCI routed nowhere: the uplink counts the cells as injected,
    the switch counts them as no-route drops, and the conservation
    identity still balances."""
    fab = Fabric(DS5000_200, 2)
    app, _ = fab.hosts[0].open_raw_path(vci=0x2ABC)  # no route installed

    def go():
        yield from app.send_message(b"to nowhere" * 50)

    spawn(fab.sim, go(), "lost")
    fab.sim.run()
    drops = fab.drop_breakdown()
    assert drops["no_route"] > 0
    assert drops["queue_full"] == 0
    assert fab.hosts[1].driver.pdus_received == 0
    conservation = fab.conservation()
    assert conservation["holds"]
    assert conservation["dropped"] == drops["no_route"]


# -- cross-traffic edge cases ------------------------------------------------


def test_zero_duration_cross_traffic_injects_nothing():
    """Regression: the pump used to inject its first cell before
    checking the stop time, so a zero-length window still produced
    one cell."""
    sim = Simulator()
    sw, order = _single_port_switch(sim)
    sw.inject_cross_traffic(0, 0, rate_mbps=300.0, duration_us=0.0)
    sim.run()
    assert sw.cross_cells_injected == 0
    assert order == []
    assert sw.cells_dropped == 0


def test_cross_traffic_rejects_nonpositive_rate():
    sim = Simulator()
    sw, _ = _single_port_switch(sim)
    with pytest.raises(SimulationError):
        sw.inject_cross_traffic(0, 0, rate_mbps=0.0)
    with pytest.raises(SimulationError):
        sw.inject_cross_traffic(0, 0, rate_mbps=-5.0)


# -- striping-width guard ----------------------------------------------------


def test_striped_cell_width_mismatch_raises():
    """A striped cell stamped with the upstream lane it rode must land
    on the same lane downstream; a trunk with a different lane count
    would silently break the reassembly invariant."""
    sim = Simulator()
    sw = CellSwitch(sim)
    sw.add_trunk(0, lambda cell: None, n_lanes=2)
    sw.add_route(10, 0)
    cell = Cell(vci=10, payload=b"", tx_index=6)
    cell.link_id = 2        # rode lane 2 of a 4-wide upstream link
    with pytest.raises(SimulationError):
        sw.input_cell(cell)  # 6 mod 2 == 0 != 2: width mismatch


def test_unstamped_cell_width_mismatch_raises():
    sim = Simulator()
    sw = CellSwitch(sim)
    sw.add_trunk(0, lambda cell: None, n_lanes=2)
    sw.add_route(10, 0)
    cell = Cell(vci=10, payload=b"")
    cell.link_id = 3        # lane 3 cannot exist on a 2-lane trunk
    with pytest.raises(SimulationError):
        sw.input_cell(cell)


def test_matching_width_passes_the_guard():
    sim = Simulator()
    sw = CellSwitch(sim)
    sw.add_trunk(0, lambda cell: None, n_lanes=4)
    sw.add_route(10, 0)
    cell = Cell(vci=10, payload=b"", tx_index=5)
    cell.link_id = 1        # 5 mod 4 == 1: consistent
    sw.input_cell(cell)
    assert sw.cells_switched == 1

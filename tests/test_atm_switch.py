"""Cell switch tests: routing, port queueing, and cause-3 skew."""

import pytest

from repro.atm import SegmentMode, SkewModel, StripedLink
from repro.atm.switch import CellSwitch
from repro.hw import DS5000_200
from repro.net import Host
from repro.sim import SimulationError, Simulator, spawn


def _switched_pair(mode=SegmentMode.IN_ORDER):
    """Host A -> striped link -> switch -> host B."""
    sim = Simulator()
    a = Host(sim, DS5000_200, name="a")
    b = Host(sim, DS5000_200, name="b")
    switch = CellSwitch(sim)
    switch.add_trunk(0, b.board.deliver_cell)
    link = StripedLink(sim, switch.input_cell, skew=SkewModel.none())
    a.connect(link, segment_mode=mode)
    b.connect(StripedLink(sim, a.board.deliver_cell), segment_mode=mode)
    return sim, a, b, switch, link


def test_routing_and_vci_rewrite():
    sim, a, b, switch, link = _switched_pair()
    switch.add_route(300, trunk_id=0, out_vci=700)
    app_a, _ = a.open_raw_path(vci=300)
    app_b, _ = b.open_raw_path(vci=700)
    b_keep = app_b
    b_keep.keep_data = True

    def go():
        yield from app_a.send_message(b"switched and rewritten" * 10)

    spawn(sim, go(), "s")
    sim.run()
    assert app_b.receptions[0].data == b"switched and rewritten" * 10
    assert switch.cells_switched > 0
    assert switch.cells_dropped == 0


def test_unrouted_vci_dropped():
    sim, a, b, switch, link = _switched_pair()
    app_a, _ = a.open_raw_path(vci=301)

    def go():
        yield from app_a.send_message(b"lost in the fabric")

    spawn(sim, go(), "s")
    sim.run()
    assert switch.cells_dropped > 0
    assert b.driver.pdus_received == 0


def test_duplicate_route_rejected():
    sim, a, b, switch, link = _switched_pair()
    switch.add_route(300, 0)
    with pytest.raises(SimulationError):
        switch.add_route(300, 0)
    with pytest.raises(SimulationError):
        switch.add_route(302, 9)  # unknown trunk


def test_cross_traffic_on_one_port_causes_skew():
    """Competing traffic on one output port delays exactly one lane --
    the paper's third skew cause -- and sequence-number reassembly
    rides it out."""
    sim, a, b, switch, link = _switched_pair(mode=SegmentMode.SEQUENCE)
    switch.add_route(300, 0)
    # Congest lane 1's output port with ~120 Mbps of cross traffic.
    switch.inject_cross_traffic(0, lane=1, rate_mbps=120.0,
                                duration_us=4000.0)
    app_a, _ = a.open_raw_path(vci=300)
    app_b, _ = b.open_raw_path(vci=300)
    app_b.keep_data = True
    payload = b"through the congested switch " * 100

    def go():
        yield from app_a.send_message(payload)

    spawn(sim, go(), "s")
    sim.run()
    assert app_b.receptions[0].data == payload
    # The receive processor saw misordered arrivals: skew happened.
    assert b.rxp.pdus_errored == 0
    # Lane 1 queued deeper than the uncongested lanes.
    depths = [p.max_queue_seen for p in switch._trunks[0]]
    assert depths[1] > max(depths[0], depths[2], depths[3])


def test_in_order_reassembly_detects_switch_skew():
    """The same congestion breaks plain AAL5 -- detected by CRC."""
    sim, a, b, switch, link = _switched_pair(mode=SegmentMode.IN_ORDER)
    switch.add_route(300, 0)
    switch.inject_cross_traffic(0, lane=2, rate_mbps=140.0,
                                duration_us=4000.0)
    app_a, _ = a.open_raw_path(vci=300)
    app_b, _ = b.open_raw_path(vci=300)

    def go():
        yield from app_a.send_message(b"fragile ordering " * 120)

    spawn(sim, go(), "s")
    sim.run()
    # Either the PDU errored on reassembly, or (rarely) the skew was
    # absorbed; corruption must never be silent.
    if app_b.receptions:
        pytest.skip("skew absorbed in this seed; nothing to detect")
    assert b.rxp.pdus_errored + b.driver.rx_errors >= 1

"""Application device channel tests (section 3.2)."""

from repro.adc import AdcChannelDriver, AdcManager, grants_overlap
from repro.hw import DS5000_200
from repro.net import Host
from repro.osiris import Descriptor, FLAG_END_OF_PDU
from repro.sim import Simulator, spawn
from repro.xkernel.protocols.testproto import TestProgram


def _host(machine=DS5000_200):
    sim = Simulator()
    host = Host(sim, machine, reserved_bytes=8 * 1024 * 1024)
    host.connect(link=None, deliver=lambda cell: None)
    return sim, host


def _adc(sim, host, **kw):
    manager = AdcManager(host.kernel, host.board)
    domain = host.kernel.create_domain("app")
    grant = manager.open(domain, **kw)
    driver = AdcChannelDriver(sim, host.kernel, host.board, grant,
                              host.driver)
    return manager, grant, driver


def test_open_assigns_channel_vcis_and_pages():
    sim, host = _host()
    manager, grant, driver = _adc(sim, host, n_vcis=2)
    assert grant.channel.channel_id == 1
    assert len(grant.vcis) == 2
    for vci in grant.vcis:
        assert host.board.vci_table[vci] == 1
    assert grant.channel.allowed_pages


def test_two_adcs_do_not_share_pages():
    sim, host = _host()
    manager = AdcManager(host.kernel, host.board)
    a = manager.open(host.kernel.create_domain("a"))
    b = manager.open(host.kernel.create_domain("b"))
    assert a.channel.channel_id != b.channel.channel_id
    assert not grants_overlap(a, b)


def test_close_releases_channel_and_vcis():
    sim, host = _host()
    manager, grant, driver = _adc(sim, host)
    vci = grant.vcis[0]
    manager.close(grant)
    assert vci not in host.board.vci_table
    assert not host.board.channels[1].open


def test_adc_send_bypasses_kernel_driver():
    sim, host = _host()
    manager, grant, driver = _adc(sim, host)
    session = driver.open_path()
    app = TestProgram(host.test, session)

    def go():
        msg = driver.new_message(b"direct to the wire" * 10)
        yield from session.send(msg)

    spawn(sim, go(), "app")
    sim.run()
    assert driver.pdus_sent == 1
    assert host.driver.pdus_sent == 0          # kernel driver idle
    assert grant.channel.pdus_sent == 1        # board saw it
    assert grant.domain.space.wired_pages() >= 1  # setup-time wiring only


def test_adc_loopback_roundtrip():
    """Loop the board's transmit onto its own receive FIFO: the app
    sends and receives entirely through its ADC."""
    sim = Simulator()
    host = Host(sim, DS5000_200, reserved_bytes=8 * 1024 * 1024)
    host.connect(link=None, deliver=host.board.deliver_cell)
    manager, grant, driver = _adc(sim, host)
    session = driver.open_path()
    app = TestProgram(host.test, session, keep_data=True)
    payload = b"kernel bypassed!" * 40

    def go():
        msg = driver.new_message(payload)
        yield from session.send(msg)

    spawn(sim, go(), "app")
    sim.run()
    assert driver.pdus_received == 1
    assert app.receptions[0].data == payload
    # The kernel fielded the interrupt but never touched the data path.
    assert host.kernel.interrupts_serviced >= 1
    assert host.driver.pdus_received == 0


def test_unauthorized_buffer_raises_violation():
    sim, host = _host()
    manager, grant, driver = _adc(sim, host)
    # The app forges a descriptor pointing at kernel memory.
    evil = Descriptor(addr=0x300000, length=100,
                      flags=FLAG_END_OF_PDU, vci=grant.vcis[0])
    grant.channel.tx_queue.push(evil, by_host=True)
    sim.run()
    assert driver.violations == 1
    assert grant.channel.pdus_sent == 0


def test_adc_priority_on_transmit():
    """A higher-priority ADC's queue is served first."""
    sim, host = _host()
    manager = AdcManager(host.kernel, host.board)
    fast = manager.open(host.kernel.create_domain("fast"), priority=0,
                        channel_id=1)
    slow = manager.open(host.kernel.create_domain("slow"), priority=5,
                        channel_id=2)
    order = []
    host.txp.deliver = lambda cell: order.append(cell.vci)
    for grant in (slow, fast):  # queue slow first
        addr = grant.tx_region_addr
        grant.channel.tx_queue.push(
            Descriptor(addr=addr, length=200, flags=FLAG_END_OF_PDU,
                       vci=grant.vcis[0]), by_host=True)
    sim.run()
    assert order[0] == fast.vcis[0]


def test_adc_latency_close_to_kernel_latency():
    """Section 4: ADC user-to-user results were 'within the error
    margins' of kernel-to-kernel.  Compare raw one-way delivery."""
    # Kernel path.
    simk = Simulator()
    hostk = Host(simk, DS5000_200, reserved_bytes=8 * 1024 * 1024)
    hostk.connect(link=None, deliver=hostk.board.deliver_cell)
    appk, pathk = hostk.open_raw_path()

    def send_kernel():
        yield from appk.send_length(1024)

    spawn(simk, send_kernel(), "k")
    simk.run()
    kernel_time = appk.receptions[0].time

    # ADC path.
    sima = Simulator()
    hosta = Host(sima, DS5000_200, reserved_bytes=8 * 1024 * 1024)
    hosta.connect(link=None, deliver=hosta.board.deliver_cell)
    manager, grant, driver = _adc(sima, hosta)
    session = driver.open_path()
    appa = TestProgram(hosta.test, session)

    def send_adc():
        msg = driver.new_message(b"\xA5" * 1024)
        yield from session.send(msg)

    spawn(sima, send_adc(), "a")
    sima.run()
    adc_time = appa.receptions[0].time

    # Within ~15% of each other (no domain crossing on either path;
    # the ADC saves the per-send wiring, the kernel path is otherwise
    # identical).
    assert adc_time < kernel_time
    assert abs(adc_time - kernel_time) / kernel_time < 0.15

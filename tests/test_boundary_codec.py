"""Boundary-codec round-trip tests: every message kind, every key
tag, the numeric edges of every fixed-width field, and a fuzz sweep
asserting ``decode(encode(x)) == x`` field-for-field.

``Cell.__eq__`` ignores the ``compare=False`` bookkeeping fields
(link_id, tx_index, efci, corrupted), so these tests compare cells
attribute-by-attribute -- a codec that dropped the EFCI bit must not
pass on dataclass equality.
"""

import math
import pickle
import random

import pytest

from repro.atm.cell import Cell
from repro.cluster.boundary import CODEC_VERSION, BoundaryCodec
from repro.sim import SimulationError

_CELL_FIELDS = ("vci", "payload", "eom", "seq", "atm_last",
                "link_id", "tx_index", "efci", "corrupted")


def _same_msg(a, b):
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _same_msg(x, y) for x, y in zip(a, b))
    if isinstance(a, Cell) or isinstance(b, Cell):
        return (type(a) is type(b)
                and all(_same_msg(getattr(a, f), getattr(b, f))
                        for f in _CELL_FIELDS))
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return type(a) is type(b) and a == b


def _roundtrip(batch, codec=None):
    codec = codec or BoundaryCodec()
    out = codec.decode_batch(codec.encode_batch(batch))
    assert len(out) == len(batch)
    for got, want in zip(out, batch):
        assert _same_msg(got, want), f"{got!r} != {want!r}"
    return out


def _cell(**kw):
    base = dict(vci=17, payload=b"\xa5" * 44, eom=False, seq=None,
                atm_last=False, link_id=2, tx_index=9, efci=False,
                corrupted=False)
    base.update(kw)
    cell = Cell.__new__(Cell)
    for name, value in base.items():
        setattr(cell, name, value)
    return cell


# ---------------------------------------------------------------- kinds


def test_roundtrip_every_message_kind():
    batch = [
        (1.5, ("up", 3, 7, 12), ("in", 0, 2, _cell())),
        (2.0, ("isw", 1, 0, 4, 8), ("in", 1, -1, _cell(vci=40))),
        (2.5, ("credit", 2, 11), ("refill", 2, 33)),
        (3.0, ("efci", 1, 5), ("pause", 1, 40)),
    ]
    _roundtrip(batch)
    # All four must take fixed records, not the pickle escape: the
    # whole batch (one pooled run-length payload) stays tiny.
    assert len(BoundaryCodec().encode_batch(batch)) < 160


def test_roundtrip_every_key_tag():
    cell = _cell()
    for key in (("up", 0, 1, 2), ("isw", 0, 1, 2, 3),
                ("credit", 0, 1), ("efci", 0, 1)):
        _roundtrip([(0.0, key, ("in", 0, 0, cell))])


def test_empty_batch():
    assert BoundaryCodec().decode_batch(
        BoundaryCodec().encode_batch([])) == []


# ----------------------------------------------------- float edge cases


@pytest.mark.parametrize("when", [
    0.0, -0.0, 5e-324, 1.7976931348623157e308, 1e-300,
    123456789.000000001, float("inf"), -float("inf"),
    2.0 ** 53, 2.0 ** 53 + 2.0,
])
def test_when_float_edges(when):
    out = _roundtrip([(when, ("up", 1, 2, 3), ("refill", 0, 1))])
    got = out[0][0]
    assert got == when
    assert math.copysign(1.0, got) == math.copysign(1.0, when)


def test_when_nan_roundtrips():
    out = _roundtrip([(float("nan"), ("up", 1, 2, 3),
                       ("refill", 0, 1))])
    assert math.isnan(out[0][0])


def test_non_float_when_takes_escape():
    # An int timestamp must come back an int, not a coerced float.
    out = _roundtrip([(7, ("up", 1, 2, 3), ("refill", 0, 1))])
    assert type(out[0][0]) is int


def test_non_numeric_when_takes_escape():
    # The escape prefix stores an advisory float; a string timestamp
    # must not crash the encoder and must round-trip exactly.
    out = _roundtrip([("soon", ("up", 1, 2, 3), ("refill", 0, 1))])
    assert out[0][0] == "soon"


# ------------------------------------------------- field-width extremes


def test_max_width_fields_fixed_record():
    cell = _cell(vci=0xFFFF, seq=(1 << 64) - 1, link_id=-128,
                 tx_index=-(1 << 31), eom=True, atm_last=True,
                 efci=True, corrupted=True)
    batch = [
        (1.0, ("up", 0xFFFF, 0xFFFF, (1 << 32) - 1),
         ("in", 0xFFFF, (1 << 15) - 1, cell)),
        (2.0, ("isw", 0xFFFF, 0xFFFF, 0xFFFF, (1 << 32) - 1),
         ("in", 0, -(1 << 15), _cell(link_id=127,
                                     tx_index=(1 << 31) - 1))),
        (3.0, ("credit", 0xFFFF, (1 << 32) - 1),
         ("refill", 0xFFFF, 0xFFFF)),
    ]
    _roundtrip(batch)
    # Extreme-but-in-range values still fit fixed records.
    assert len(BoundaryCodec().encode_batch(batch)) < 180


@pytest.mark.parametrize("batch", [
    # Each of these exceeds one fixed-width field and must take the
    # escape record -- and still round-trip exactly.
    [(1.0, ("up", 1 << 16, 0, 0), ("refill", 0, 0))],
    [(1.0, ("up", -1, 0, 0), ("refill", 0, 0))],
    [(1.0, ("up", 0, 0, 1 << 32), ("refill", 0, 0))],
    [(1.0, ("up", 0, 0, -1), ("refill", 0, 0))],
    [(1.0, ("up", 0, 0, 0), ("refill", 1 << 16, 0))],
    [(1.0, ("up", 0, 0, 0), ("refill", 0, 1 << 16))],
    [(1.0, ("up", 0, 0, 0), ("in", 1 << 16, 0, None))],
    [(1.0, ("up", 0, 0, 0), ("in", 0, 1 << 15, None))],
    [(1.0, ("up", 0, 0, 0), ("in", 0, -(1 << 15) - 1, None))],
])
def test_out_of_range_fields_escape(batch):
    if batch[0][2][0] == "in" and batch[0][2][3] is None:
        batch = [(batch[0][0], batch[0][1],
                  batch[0][2][:3] + (_cell(),))]
    _roundtrip(batch)


def test_out_of_range_cell_bookkeeping_escapes():
    for cell in (_cell(seq=1 << 64), _cell(seq=-1),
                 _cell(link_id=128), _cell(link_id=-129),
                 _cell(tx_index=1 << 31)):
        _roundtrip([(1.0, ("up", 0, 0, 0), ("in", 0, 0, cell))])


# ------------------------------------------------------ escape coverage


def test_exotic_keys_and_messages_escape():
    _roundtrip([
        (1.0, ("up", 0, 0, 0), ("open", 0, 1, 2, 3)),
        (1.0, ("weird", 5), ("refill", 0, 0)),
        (1.0, "not-a-tuple", ("refill", 0, 0)),
        (1.0, ("up", "zero", 0, 0), ("refill", 0, 0)),
        (1.0, ("up", 0, 0), ("refill", 0, 0)),        # wrong arity
        (1.0, ("up", 0, 0, 0, 0), ("refill", 0, 0)),  # wrong arity
        (1.0, ("up", 0, 0, 0), ["refill", 0, 0]),     # list message
        (1.0, ("up", 0, 0, 0), ("in", 0, 0, "not-a-cell")),
    ])


class _MarkedCell(Cell):
    """Module-level so the escape record's pickle can reach it."""


def test_cell_subclass_escapes():
    cell = _MarkedCell(vci=1, payload=b"x")
    out = _roundtrip([(1.0, ("up", 0, 0, 0), ("in", 0, 0, cell))])
    assert type(out[0][2][3]) is _MarkedCell


# ------------------------------------------------------------- payloads


@pytest.mark.parametrize("payload", [
    b"", b"\x00", b"\xff" * 44, b"\xa5" * 44, b"\xa5" * 43 + b"\xa6",
    bytes(range(44)), b"\x80" * 7,
])
def test_payload_shapes(payload):
    out = _roundtrip([(1.0, ("up", 0, 0, 0),
                       ("in", 0, 0, _cell(payload=payload)))])
    got = out[0][2][3].payload
    assert got == payload and type(got) is bytes


def test_payload_pool_dedup():
    codec = BoundaryCodec()
    fill = b"\xa5" * 44
    batch = [(float(i), ("up", 0, 0, i),
              ("in", 0, 0, _cell(payload=fill)))
             for i in range(64)]
    solo = len(codec.encode_batch(batch[:1]))
    full = len(codec.encode_batch(batch))
    # 64 identical payloads share one pool entry: the marginal cost of
    # a record must be far below the 44-byte payload it references.
    assert full - solo < 40 * 63
    _roundtrip(batch, codec)


def test_oversize_payload_escapes():
    cell = _cell(payload=b"y" * 45)
    _roundtrip([(1.0, ("up", 0, 0, 0), ("in", 0, 0, cell))])


# --------------------------------------------------- encode_into / shm


def test_encode_into_overflow_returns_none():
    codec = BoundaryCodec()
    batch = [(1.0, ("up", 0, 0, 0), ("in", 0, 0, _cell()))]
    blob = codec.encode_batch(batch)
    for cap in range(len(blob)):
        assert codec.encode_into(batch, bytearray(cap), 0) is None
    buf = bytearray(len(blob) + 8)
    end = codec.encode_into(batch, buf, 0)
    assert end == len(blob) and bytes(buf[:end]) == blob


def test_encode_into_at_offset():
    codec = BoundaryCodec()
    batch = [(2.5, ("credit", 9, 4), ("refill", 9, 33))]
    buf = bytearray(512)
    end = codec.encode_into(batch, buf, 100)
    decoded = codec.decode_batch(memoryview(buf)[100:end])
    assert _same_msg(decoded[0], batch[0])


# ------------------------------------------------------------ versioning


def test_version_mismatch_raises():
    codec = BoundaryCodec()
    blob = bytearray(codec.encode_batch([(1.0, ("up", 0, 0, 0),
                                          ("refill", 0, 0))]))
    assert blob[0] == CODEC_VERSION
    blob[0] = CODEC_VERSION + 1
    with pytest.raises(SimulationError, match="version mismatch"):
        codec.decode_batch(bytes(blob))


def test_unknown_record_kind_raises():
    codec = BoundaryCodec()
    blob = bytearray(codec.encode_batch([(1.0, ("up", 0, 0, 0),
                                          ("refill", 0, 0))]))
    # Record prefix sits right after the 11-byte header; corrupt the
    # kind byte to an unassigned value.
    blob[11] = 77
    with pytest.raises(SimulationError, match="unknown record kind"):
        codec.decode_batch(bytes(blob))


# ------------------------------------------------------------ fuzz sweep


def _random_item(rng):
    roll = rng.random()
    if roll < 0.15:       # exotic -- forced escape
        return (rng.choice([1.0, 2, "t"]),
                rng.choice([("x", 1, 2), "key", ("up", -1, 0)]),
                rng.choice([("bye",), ["in"], None,
                            ("in", 0, 0, "not-a-cell")]))
    when = rng.choice([
        rng.uniform(0, 1e7), rng.uniform(-1e-9, 1e-9),
        float(rng.getrandbits(40)), 0.0,
    ])
    tag = rng.choice(["up", "isw", "credit", "efci"])
    arity = {"up": 2, "isw": 3, "credit": 1, "efci": 1}[tag]
    key = (tag, *(rng.randrange(0, 1 << 16) for _ in range(arity)),
           rng.randrange(0, 1 << 32))
    kind = rng.random()
    if kind < 0.6:
        payload = rng.choice([
            bytes([rng.getrandbits(8)]) * rng.randrange(0, 45),
            rng.randbytes(rng.randrange(0, 45)),
        ])
        cell = _cell(
            vci=rng.randrange(0, 1 << 16), payload=payload,
            eom=rng.random() < 0.5, atm_last=rng.random() < 0.3,
            seq=(rng.randrange(0, 1 << 64)
                 if rng.random() < 0.5 else None),
            link_id=rng.randrange(-128, 128),
            tx_index=rng.randrange(-(1 << 31), 1 << 31),
            efci=rng.random() < 0.3, corrupted=rng.random() < 0.1)
        return (when, key, ("in", rng.randrange(0, 1 << 16),
                            rng.randrange(-(1 << 15), 1 << 15), cell))
    mkind = "refill" if kind < 0.8 else "pause"
    return (when, key, (mkind, rng.randrange(0, 1 << 16),
                        rng.randrange(0, 1 << 16)))


def test_fuzz_roundtrip():
    rng = random.Random(0)
    codec = BoundaryCodec()
    for _ in range(200):
        batch = [_random_item(rng) for _ in range(rng.randrange(0, 40))]
        _roundtrip(batch, codec)


def test_fuzz_matches_pickle_oracle():
    # The escape record *is* pickle, and for fixed records the decoded
    # tuples must equal what a pickle round-trip would have produced.
    rng = random.Random(7)
    codec = BoundaryCodec()
    batch = [_random_item(rng) for _ in range(100)]
    oracle = pickle.loads(pickle.dumps(batch))
    decoded = codec.decode_batch(codec.encode_batch(batch))
    for got, want in zip(decoded, oracle):
        assert _same_msg(got, want)

"""Virtual memory, fragmentation, wiring and domain tests."""

import pytest
from hypothesis import given, strategies as st

from repro.host import AddressSpace, ProtectionDomain, WiringService, \
    WiringStyle
from repro.hw import DS5000_200, HostCPU, MemorySystem, PhysicalMemory, \
    TurboChannel
from repro.sim import SimulationError, Simulator, spawn


def _mem():
    return PhysicalMemory(16 * 1024 * 1024, 4096,
                          reserved_bytes=2 * 1024 * 1024)


def test_alloc_and_rw_roundtrip():
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(10000)
    data = bytes(range(256)) * 40  # 10240... use 10000
    data = data[:10000]
    space.write(vaddr, data)
    assert space.read(vaddr, 10000) == data


def test_translate_unmapped_faults():
    space = AddressSpace(_mem(), "t")
    with pytest.raises(SimulationError):
        space.translate(0xDEAD0000)


def test_contiguous_virtual_is_fragmented_physically():
    """Section 2.2's premise: n virtual pages => ~n physical buffers."""
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(8 * 4096, align_page=True)
    bufs = space.physical_buffers(vaddr, 8 * 4096)
    assert len(bufs) >= 6  # scrambling leaves at most a couple adjacent
    assert sum(b.length for b in bufs) == 8 * 4096


def test_unaligned_message_spans_extra_page():
    """A page-sized message that starts mid-page occupies two pages --
    the 'd(size-1)/page_sizee + 1' effect of section 2.2."""
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(4096, offset=100)
    bufs = space.physical_buffers(vaddr, 4096)
    assert len(bufs) == 2
    assert bufs[0].length == 4096 - 100
    assert bufs[1].length == 100


def test_aligned_message_single_page():
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(4096, align_page=True)
    bufs = space.physical_buffers(vaddr, 4096)
    assert len(bufs) == 1


def test_identity_mapping_for_kernel_buffers():
    mem = _mem()
    space = AddressSpace(mem, "kernel")
    phys = mem.alloc_contiguous(16 * 1024)
    vaddr = space.map_identity(phys, 16 * 1024)
    assert vaddr == phys
    bufs = space.physical_buffers(vaddr, 16 * 1024)
    assert len(bufs) == 1  # contiguous pool: one DMA-able buffer
    assert bufs[0].addr == phys


def test_page_remap_shares_frame():
    mem = _mem()
    a = AddressSpace(mem, "a")
    b = AddressSpace(mem, "b", base_vaddr=0x2000_0000)
    va = a.alloc(4096, align_page=True)
    frame = a.translate(va)
    vb = 0x2000_0000
    b.map_page(vb, frame_addr=frame)
    a.write(va, b"shared page!")
    assert b.read(vb, 12) == b"shared page!"


def test_unmap_frees_owned_frames_only():
    mem = _mem()
    space = AddressSpace(mem, "t")
    va = space.alloc(4096, align_page=True)
    before = mem.free_frame_count
    space.unmap_page(va)
    assert mem.free_frame_count == before + 1
    # Shared (non-owned) frame is not freed on unmap.
    other = AddressSpace(mem, "o", base_vaddr=0x3000_0000)
    vb = 0x3000_0000
    frame = mem.alloc_frame()
    other.map_page(vb, frame_addr=frame)
    mid = mem.free_frame_count
    other.unmap_page(vb)
    assert mem.free_frame_count == mid


def test_wire_prevents_unmap():
    space = AddressSpace(_mem(), "t")
    va = space.alloc(4096, align_page=True)
    space.wire(va, 4096)
    with pytest.raises(SimulationError):
        space.unmap_page(va)
    space.unwire(va, 4096)
    space.unmap_page(va)


def test_unwire_unwired_page_rejected():
    space = AddressSpace(_mem(), "t")
    va = space.alloc(4096, align_page=True)
    with pytest.raises(SimulationError):
        space.unwire(va, 4096)


@given(st.integers(1, 40000), st.integers(0, 4095))
def test_physical_buffers_cover_exactly(nbytes, offset):
    space = AddressSpace(_mem(), "t")
    vaddr = space.alloc(nbytes, offset=offset)
    bufs = space.physical_buffers(vaddr, nbytes)
    assert sum(b.length for b in bufs) == nbytes
    assert all(b.length > 0 for b in bufs)
    # No buffer crosses a page boundary unless frames are adjacent.
    for buf in bufs:
        assert buf.length <= 4096 or buf.addr % 4096 == 0 or True


def test_wiring_service_costs_differ():
    sim = Simulator()
    machine = DS5000_200
    mem = _mem()
    tc = TurboChannel(sim, machine.bus)
    cpu = HostCPU(sim, machine, MemorySystem(sim, machine, tc))
    space = AddressSpace(mem, "t")
    va = space.alloc(4 * 4096, align_page=True)

    times = {}
    for style in WiringStyle:
        svc = WiringService(cpu, style)
        start = sim.now

        def run(svc=svc, key=style, start=start):
            pages = yield from svc.wire(space, va, 4 * 4096)
            times[key] = (sim.now - start, pages)
            yield from svc.unwire(space, va, 4 * 4096)

        spawn(sim, run())
        sim.run()

    fast, mach = (times[WiringStyle.FAST_LOW_LEVEL],
                  times[WiringStyle.MACH_STANDARD])
    assert fast[1] == mach[1] == 4
    # Mach-standard wiring is roughly an order of magnitude dearer.
    assert mach[0] > fast[0] * 5


def test_protection_domains_are_separate_spaces():
    mem = _mem()
    kernel = ProtectionDomain.kernel(mem)
    app = ProtectionDomain.user(mem, "app", index=1)
    assert kernel.is_kernel and not app.is_kernel
    va = app.space.alloc(100)
    app.space.write(va, b"user data")
    with pytest.raises(SimulationError):
        kernel.space.read(va, 9)  # not mapped in the kernel's table

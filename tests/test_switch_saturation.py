"""Switch-under-saturation tests.

The paper's cause-3 skew comes from 'different queuing delays
experienced by cells on different links as they pass through distinct
ports on the switches'.  These tests pin that behavior down: cross
traffic parked on one output port delays exactly that lane, queue
occupancy grows monotonically with offered load, and the cell-
conservation identity survives overload.
"""

from repro.atm import CellSwitch
from repro.atm.cell import Cell
from repro.cluster import Fabric, WorkloadSpec, run_workload
from repro.hw import DS5000_200
from repro.sim import Delay, Simulator, spawn

DATA_VCI = 100
CROSS_LANE = 1


def _run_striped_burst(cross_mbps: float) -> dict:
    """Feed a 32-cell striped burst through one trunk, optionally
    against cross traffic on lane 1; return per-cell delivery times."""
    sim = Simulator()
    sw = CellSwitch(sim)
    arrivals: dict[int, float] = {}

    def deliver(cell) -> None:
        if cell.vci == DATA_VCI:
            arrivals[cell.tx_index] = sim.now

    sw.add_trunk(0, deliver)
    sw.add_route(DATA_VCI, 0)
    if cross_mbps > 0.0:
        # Two competing flows on the same port: multi-flow cross load.
        sw.inject_cross_traffic(0, CROSS_LANE, cross_mbps / 2,
                                vci=0xFFF0, duration_us=150.0)
        sw.inject_cross_traffic(0, CROSS_LANE, cross_mbps / 2,
                                vci=0xFFF1, duration_us=150.0)

    def feed():
        yield Delay(100.0)
        for i in range(32):
            sw.input_cell(Cell(vci=DATA_VCI, payload=b"", tx_index=i))
            yield Delay(2.0)

    spawn(sim, feed(), "feed")
    sim.run()
    assert sw.queued_cells() == 0
    return arrivals


def test_cross_traffic_delays_exactly_one_lane():
    quiet = _run_striped_burst(0.0)
    loaded = _run_striped_burst(300.0)
    assert set(quiet) == set(loaded) == set(range(32))
    for i in range(32):
        if i % 4 == CROSS_LANE:
            assert loaded[i] > quiet[i]       # behind the fillers
        else:
            assert loaded[i] == quiet[i]      # other ports untouched


def _saturate(rate_mbps: float) -> tuple:
    """Pure cross load on one port for a fixed window; drain fully."""
    sim = Simulator()
    sw = CellSwitch(sim)
    delivered = [0]
    sw.add_trunk(0, lambda cell: delivered.__setitem__(
        0, delivered[0] + 1))
    sw.inject_cross_traffic(0, 0, rate_mbps, duration_us=500.0)
    sim.run()
    port = sw.port_stats()[0]
    return port.max_queue_seen, delivered[0], sw


def test_max_queue_seen_monotone_with_offered_load():
    depths = []
    for rate in (60.0, 150.0, 300.0, 600.0):
        max_seen, delivered, sw = _saturate(rate)
        depths.append(max_seen)
        # Per-switch conservation at quiescence: every injected cell
        # was forwarded or dropped.
        assert sw.queued_cells() == 0
        assert sw.cross_cells_injected == delivered + sw.cells_dropped
    assert depths == sorted(depths)
    assert depths[-1] > depths[0]
    # The top rate must actually fill the port to its configured cap.
    assert depths[-1] == CellSwitch(Simulator()).port_queue_cells


def test_incast_saturation_fills_server_ports():
    """Unpaced 8-host incast: the server trunk's ports hit capacity,
    cells drop, and the fabric-wide conservation identity balances."""
    fab = Fabric(DS5000_200, 8)
    spec = WorkloadSpec(pattern="incast", kind="open", seed=1,
                        message_bytes=4096, messages_per_client=8)
    run_workload(fab, spec)
    sw = fab.switches[0]
    assert sw.cells_dropped > 0
    server_trunk = fab._attach[0][1]
    deepest = max(p.max_queue_seen for p in sw.port_stats()
                  if p.trunk_id == server_trunk)
    assert deepest == sw.port_queue_cells
    conservation = fab.conservation()
    assert conservation["holds"]
    assert conservation["dropped"] == sw.cells_dropped

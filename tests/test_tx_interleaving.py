"""Fine-grained transmit multiplexing (section 2.5.1).

'The host could queue a number of packets and the microprocessor
could transmit one cell from each in turn.'  Interleaving trades a
little single-stream efficiency for much better latency of small PDUs
queued behind large ones.
"""

import pytest

from repro.atm import Reassembler
from repro.osiris import TxProcessor

from conftest import BoardRig


def _reassemble_per_vci(cells):
    reasm = {}
    done = []
    for cell in cells:
        r = reasm.setdefault(cell.vci, Reassembler(cell.vci))
        pdu = r.push(cell)
        if pdu is not None:
            done.append((cell.vci, pdu))
    return done


def test_interleaved_cells_alternate_between_channels(rig):
    rig.board.open_channel(1)
    rig.board.open_channel(2)
    cells = []
    txp = TxProcessor(rig.sim, rig.board, deliver=cells.append,
                      interleave=True)
    rig.queue_pdu(b"a" * 2000, vci=11, channel_id=1)
    rig.queue_pdu(b"b" * 2000, vci=22, channel_id=2)
    rig.sim.run()
    # The first several cells must alternate VCIs, not run one PDU out.
    head = [c.vci for c in cells[:10]]
    assert 11 in head and 22 in head
    transitions = sum(1 for x, y in zip(head, head[1:], strict=False)
                      if x != y)
    assert transitions >= 5


def test_interleaved_pdus_reassemble_correctly(rig):
    rig.board.open_channel(1)
    rig.board.open_channel(2)
    cells = []
    txp = TxProcessor(rig.sim, rig.board, deliver=cells.append,
                      interleave=True)
    a = bytes(range(256)) * 12
    b = b"Z" * 5000
    rig.queue_pdu(a, vci=11, channel_id=1)
    rig.queue_pdu(b, vci=22, channel_id=2)
    rig.sim.run()
    done = dict(_reassemble_per_vci(cells))
    assert done[11] == a
    assert done[22] == b
    assert txp.pdus_sent == 2


def test_interleaving_cuts_small_pdu_latency_behind_large_one(rig):
    """A 100-byte PDU queued just after a 16 KB PDU."""
    def run(interleave):
        r = BoardRig()
        r.board.open_channel(1)
        r.board.open_channel(2)
        finish = {}

        def deliver(cell):
            if cell.eom:
                finish.setdefault(cell.vci, r.sim.now)

        TxProcessor(r.sim, r.board, deliver=deliver,
                    interleave=interleave)
        r.queue_pdu(b"L" * 16384, vci=11, channel_id=1)
        r.queue_pdu(b"s" * 100, vci=22, channel_id=2)
        r.sim.run()
        return finish

    sequential = run(False)
    interleaved = run(True)
    # Sequential: the small PDU waits for all of the large one.
    assert sequential[22] > sequential[11]
    # Interleaved: the small PDU finishes long before the large one.
    assert interleaved[22] < interleaved[11] * 0.2
    assert interleaved[22] < sequential[22] * 0.1


def test_interleaving_keeps_aggregate_throughput(rig):
    def run(interleave):
        r = BoardRig()
        r.board.open_channel(1)
        r.board.open_channel(2)
        cells = []
        TxProcessor(r.sim, r.board, deliver=cells.append,
                    interleave=interleave)
        r.queue_pdu(b"x" * 8192, vci=11, channel_id=1)
        r.queue_pdu(b"y" * 8192, vci=22, channel_id=2)
        r.sim.run()
        return r.sim.now, len(cells)

    seq_time, seq_cells = run(False)
    il_time, il_cells = run(True)
    assert seq_cells == il_cells
    assert il_time == pytest.approx(seq_time, rel=0.05)


def test_interleaved_stripes_by_pdu_local_index():
    """Cell i of each PDU must ride link i mod 4 even when PDUs are
    interleaved -- the invariant skew reassembly depends on."""
    from repro.atm import StripedLink

    r = BoardRig()
    r.board.open_channel(1)
    r.board.open_channel(2)
    got = []
    link = StripedLink(r.sim, deliver=got.append)
    TxProcessor(r.sim, r.board, link=link, interleave=True)
    r.queue_pdu(b"p" * 1000, vci=11, channel_id=1)
    r.queue_pdu(b"q" * 1000, vci=22, channel_id=2)
    r.sim.run()
    for cell in got:
        assert cell.link_id == cell.tx_index % 4

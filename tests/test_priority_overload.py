"""Receiver overload with prioritized traffic (section 3.1, end).

'The threads that de-queue buffers from the various receive queues may
be assigned priorities ... During phases of receiver overload,
lower-priority receive queues will become full before higher priority
ones, allowing the adaptor board to drop the lower priority packets
before they have consumed any processing resources on the host.'

The mechanics under test: early demultiplexing gives each channel its
own receive queue and buffer pool, so an unserviced (low-priority)
channel overflows *on the board* while a serviced channel is
unaffected -- no host cycles are spent on the dropped traffic.
"""

from repro.atm import segment
from repro.osiris import Descriptor, InterruptKind, RxProcessor
from repro.sim import spawn



def _flood(rig, vci, pdus, size=600):
    cells = []
    for _ in range(pdus):
        cells += segment(b"x" * size, vci=vci)

    def feeder():
        for cell in cells:
            yield rig.board.rx_fifo.put(cell)

    spawn(rig.sim, feeder(), f"flood-{vci}")


def _feed_channel_buffers(rig, channel_id, count):
    size = rig.board.spec.recv_buffer_bytes
    channel = rig.board.channels[channel_id]
    for _ in range(count):
        addr = rig.memory.alloc_contiguous(size)
        channel.free_queue.push(
            Descriptor(addr=addr, length=size, vci=0), by_host=True)


def test_overload_isolated_to_unserviced_channel(rig):
    high = rig.board.open_channel(1, priority=0)
    low = rig.board.open_channel(2, priority=5)
    rig.board.bind_vci(11, 1)
    rig.board.bind_vci(22, 2)
    _feed_channel_buffers(rig, 1, 8)
    _feed_channel_buffers(rig, 2, 2)   # the overloaded channel's pool
    rxp = RxProcessor(rig.sim, rig.board)

    # The host services only the high-priority channel.
    def high_priority_thread():
        drained = 0
        while drained < 30:
            desc = high.recv_queue.pop(by_host=True)
            if desc is None:
                yield high.recv_queue.became_nonempty
                continue
            drained += 1
            # Recycle the buffer promptly.
            high.free_queue.push(
                Descriptor(addr=desc.addr,
                           length=rig.board.spec.recv_buffer_bytes),
                by_host=True)

    spawn(rig.sim, high_priority_thread(), "high-thread")
    _flood(rig, 11, pdus=30)
    _flood(rig, 22, pdus=30)
    rig.sim.run()

    # High-priority traffic: all delivered.
    assert high.pdus_received == 30
    assert high.cells_dropped == 0
    # Low-priority traffic: dropped at the board once its two buffers
    # and its receive queue filled -- the host never touched it.
    assert low.cells_dropped > 0
    assert low.pdus_received < 30
    assert low.recv_queue.pops == 0  # zero host processing spent


def test_drops_do_not_interrupt_the_host(rig):
    """Dropped PDUs must not generate receive interrupts either."""
    low = rig.board.open_channel(2, priority=5)
    rig.board.bind_vci(22, 2)
    _feed_channel_buffers(rig, 2, 1)
    irqs = []
    rig.board.irq.register_handler(lambda kind, ch: irqs.append((kind, ch)))
    RxProcessor(rig.sim, rig.board)
    _flood(rig, 22, pdus=20)
    rig.sim.run()
    receive_irqs = [c for k, c in irqs if k is InterruptKind.RECEIVE]
    # Exactly one empty->non-empty transition: the queue filled and
    # stayed full; overflow drops are silent.
    assert receive_irqs.count(2) == 1
    assert low.cells_dropped > 0


def test_recovery_after_overload(rig):
    """Once the host resumes service, the channel flows again."""
    low = rig.board.open_channel(2, priority=5)
    rig.board.bind_vci(22, 2)
    _feed_channel_buffers(rig, 2, 2)
    RxProcessor(rig.sim, rig.board)
    _flood(rig, 22, pdus=20)
    rig.sim.run()
    dropped_before = low.cells_dropped
    assert dropped_before > 0

    # Host wakes up and drains everything, recycling buffers.
    while True:
        desc = low.recv_queue.pop(by_host=True)
        if desc is None:
            break
        low.free_queue.push(
            Descriptor(addr=desc.addr,
                       length=rig.board.spec.recv_buffer_bytes),
            by_host=True)
    received_before = low.pdus_received
    _flood(rig, 22, pdus=3)

    def drain_thread():
        got = 0
        while got < 3:
            desc = low.recv_queue.pop(by_host=True)
            if desc is None:
                yield low.recv_queue.became_nonempty
                continue
            if desc.end_of_pdu:
                got += 1
            low.free_queue.push(
                Descriptor(addr=desc.addr,
                           length=rig.board.spec.recv_buffer_bytes),
                by_host=True)

    spawn(rig.sim, drain_thread(), "drain")
    rig.sim.run()
    assert low.pdus_received >= received_before + 3
    assert low.cells_dropped == dropped_before  # no new drops

"""Determinism-linter tests: every rule fires on its fixture at the
expected line, the shipped tree lints clean, and the allowlist
machinery behaves."""

from pathlib import Path

import pytest

from repro.analysis.lint import (
    AllowlistEntry, lint_source, lint_tree, parse_allowlist,
)

FIXTURES = Path(__file__).parent / "lint_fixtures"

# fixture file -> (synthetic relpath, expected rule, expected lines).
# The relpath places scope-gated rules (DET103, DET105) inside the
# order-sensitive packages.
_CASES = {
    "det101.py": ("faults/det101.py", "DET101", (5, 6)),
    "det102.py": ("det102.py", "DET102", (7,)),
    "det103.py": ("cluster/det103.py", "DET103", (10,)),
    "det104.py": ("det104.py", "DET104", (5,)),
    "det105.py": ("sim/det105.py", "DET105", (11,)),
    "det106.py": ("det106.py", "DET106", (8,)),
}


@pytest.mark.parametrize("fixture", sorted(_CASES))
def test_fixture_flags_rule_at_line(fixture):
    relpath, rule, lines = _CASES[fixture]
    findings = lint_source((FIXTURES / fixture).read_text(), relpath)
    assert [f.rule for f in findings] == [rule] * len(lines)
    assert tuple(f.line for f in findings) == lines
    for finding in findings:
        assert finding.path == relpath
        assert finding.render().startswith(f"{relpath}:{finding.line}:")


def test_clean_fixture_has_no_findings():
    source = (FIXTURES / "clean.py").read_text()
    assert lint_source(source, "cluster/clean.py") == []


def test_scope_gating():
    # Scope is an exclusion list: xkernel/ (silently unchecked under
    # the old explicit inclusion list) now fires DET103 like any other
    # model package; only bench/ and baselines/ are exempt.
    source = (FIXTURES / "det103.py").read_text()
    assert [f.rule for f in lint_source(source, "xkernel/det103.py")] \
        == ["DET103"]
    assert lint_source(source, "baselines/det103.py") == []
    # And bench/ may read wall clocks.
    source = (FIXTURES / "det102.py").read_text()
    assert lint_source(source, "bench/det102.py") == []


def test_order_insensitive_consumers_pass():
    src = ("def f(d, s):\n"
           "    a = sorted(d.items())\n"
           "    b = sum(d.values())\n"
           "    c = max(s)\n"
           "    e = len({1, 2})\n"
           "    return a, b, c, e\n")
    assert lint_source(src, "cluster/x.py") == []


def test_ordered_materializers_flagged():
    src = "def f(d):\n    return list(d.values())\n"
    findings = lint_source(src, "cluster/x.py")
    assert [f.rule for f in findings] == ["DET103"]


def test_shipped_tree_lints_clean():
    result = lint_tree()
    assert result.findings == []
    assert result.unused_allowlist == []
    assert result.checked_files > 50


def test_allowlist_parsing_and_matching():
    entries = parse_allowlist(
        "# comment\n"
        "\n"
        "DET102 cli.py -- operator chrome\n"
        "DET103 sim/core.py:164 -- heapify re-sorts\n")
    assert entries == [
        AllowlistEntry("DET102", "cli.py", None, "operator chrome"),
        AllowlistEntry("DET103", "sim/core.py", 164,
                       "heapify re-sorts"),
    ]
    src = "import time\nt = time.time()\n"
    findings = lint_source(src, "cli.py")
    assert [f.rule for f in findings] == ["DET102"]
    assert entries[0].matches(findings[0])
    assert not entries[1].matches(findings[0])


def test_allowlist_rejects_garbage():
    with pytest.raises(ValueError, match="allowlist line 1"):
        parse_allowlist("DET999 nowhere.py -- bogus rule\n")

"""Ownership-checker tests: every RACE rule fires on its fixture at
the expected line, the shipped tree checks clean, the suppression
machinery behaves, a seeded SRSW violation against the real model is
caught, and the happens-before verifier accepts real sharded traces
while rejecting corrupted ones."""

import ast
import copy
import json
from pathlib import Path

import pytest

from repro.analysis import sanitize
from repro.analysis.causality import (
    build_trace_doc, verify_trace, verify_trace_file,
)
from repro.analysis.lint import parse_allowlist
from repro.analysis.ownership import (
    RULES, AnnotationError, OwnershipChecker, actor_root,
    check_source, check_tree, default_root, parse_annotations,
    _collect_files,
)
from repro.cluster import WorkloadSpec
from repro.cluster.sharded import run_cluster_sharded
from repro.hw.specs import DS5000_200

FIXTURES = Path(__file__).parent / "race_fixtures"

# fixture file -> (expected rule, expected lines), checked in
# isolation so each fixture documents exactly one discipline breach.
_CASES = {
    "race201.py": ("RACE201", (45,)),
    "race202.py": ("RACE202", (21,)),
    "race203.py": ("RACE203", (21,)),
    "race204.py": ("RACE204", (24,)),
}


# ---------------------------------------------------------------------------
# Static rules on the fixture corpus
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fixture", sorted(_CASES))
def test_fixture_flags_rule_at_line(fixture):
    rule, lines = _CASES[fixture]
    findings = check_source((FIXTURES / fixture).read_text(), fixture)
    assert [f.rule for f in findings] == [rule] * len(lines)
    assert tuple(f.line for f in findings) == lines
    for finding in findings:
        assert finding.path == fixture
        assert finding.render().startswith(f"{fixture}:{finding.line}:")


def test_clean_fixture_has_no_findings():
    source = (FIXTURES / "clean.py").read_text()
    assert check_source(source, "clean.py") == []


def test_corpus_every_rule_fires_once():
    result = check_tree(root=FIXTURES, suppressions=[])
    assert sorted(f.rule for f in result.findings) \
        == ["RACE201", "RACE202", "RACE203", "RACE204"]
    assert result.checked_files == 5


def test_race201_names_both_actors():
    findings = check_source((FIXTURES / "race201.py").read_text(),
                            "race201.py")
    (finding,) = findings
    assert "rx-processor" in finding.message
    assert "tx-processor" in finding.message
    assert "DescriptorQueue.tail" in finding.message


def test_tree_checks_clean():
    # The shipped model tree carries no races and no stale
    # suppressions -- the CI gate's exact invocation.
    result = check_tree()
    assert result.findings == []
    assert result.unused_suppressions == []
    assert result.suppressed == 0


def test_seeded_srsw_violation_is_caught():
    # Acceptance scenario: introduce a second writer on the transmit
    # queue's tail pointer into the *real* model tree and the checker
    # must name both actors at the true pop sites.
    thief = (
        "class TailThief:\n"
        '    """Owner: host-thief"""\n'
        "\n"
        "    def __init__(self, channel: Channel):\n"
        "        self.channel = channel\n"
        "\n"
        "    def steal(self):\n"
        "        self.channel.tx_queue.pop(by_host=True)\n"
    )
    root = default_root()
    modules = [(rel, ast.parse(path.read_text(), filename=rel))
               for path, rel in _collect_files(root)]
    modules.append(("osiris/tail_thief.py", ast.parse(thief)))
    findings = OwnershipChecker(modules).run()
    race201 = [f for f in findings if f.rule == "RACE201"]
    assert race201, "seeded second writer went undetected"
    flagged = {(f.path, f.line) for f in race201}
    texts = " ".join(f.message for f in race201)
    assert "host-thief" in texts and "tx-processor" in texts
    assert any(p == "osiris/tx_processor.py" or
               p == "osiris/tail_thief.py" for p, _ in flagged)


def test_actor_hierarchy_dotted_labels():
    # 'boundary.train-fold' is the boundary dispatcher refined for
    # sanitizer attribution, not a second actor.
    assert actor_root("boundary.train-fold") == "boundary"
    assert actor_root("host") == "host"
    source = (FIXTURES / "race202.py").read_text()
    sub = source.replace(
        "        self.switch.input_cell(cell)  # RACE202",
        "        with maybe_actor('boundary.train-fold'):\n"
        "            self.switch.input_cell(cell)")
    assert check_source(sub, "race202.py") == []
    rogue = source.replace(
        "        self.switch.input_cell(cell)  # RACE202",
        "        with maybe_actor('rogue.train-fold'):\n"
        "            self.switch.input_cell(cell)")
    assert [f.rule for f in check_source(rogue, "race202.py")] \
        == ["RACE202"]


# ---------------------------------------------------------------------------
# Annotations and suppressions
# ---------------------------------------------------------------------------

def test_annotation_grammar():
    ann = parse_annotations(
        "Doc.\n\n"
        "Owner: driver\n"
        "Owner: _records -> boundary\n"
        "SRSW: tail via pop, pop_rr\n"
        "Boundary: apply_dead\n"
        "Fold: input_train\n"
        "Root: arm -> recovery\n"
        "Effect: refill\n",
        where="test")
    assert ann.class_actor == "driver"
    assert ann.owners == {"_records": "boundary"}
    assert ann.srsw == {"tail": ("pop", "pop_rr")}
    assert ann.boundary == ("apply_dead",)
    assert ann.fold == ("input_train",)
    assert ann.roots == {"arm": "recovery"}
    assert ann.effects == ("refill",)
    assert not ann.empty
    assert parse_annotations(None, where="test").empty


def test_annotation_errors_are_loud():
    with pytest.raises(AnnotationError):
        parse_annotations("X.\n\nSRSW: tail\n", where="test")
    with pytest.raises(AnnotationError):
        parse_annotations("X.\n\nRoot: arm\n", where="test")


def test_suppressions_filter_and_report_stale():
    entries = parse_allowlist(
        "RACE201 race201.py:45 -- fixture documents the breach\n"
        "RACE202 race202.py:21 -- fixture\n"
        "RACE203 race203.py:21 -- fixture\n"
        "RACE204 race204.py:24 -- fixture\n"
        "RACE201 nowhere.py:1 -- stale entry\n",
        rules=RULES)
    result = check_tree(root=FIXTURES, suppressions=entries)
    assert result.findings == []
    assert result.suppressed == 4
    assert [e.path for e in result.unused_suppressions] \
        == ["nowhere.py"]


def test_unknown_rule_in_suppression_file_rejected():
    with pytest.raises(ValueError):
        parse_allowlist("BOGUS x.py:1 -- why\n", rules=RULES)


# ---------------------------------------------------------------------------
# Happens-before replay
# ---------------------------------------------------------------------------

def _kwargs():
    return dict(machines=DS5000_200, n_hosts=4, n_switches=1,
                backpressure="credit", credit_window_cells=64,
                drain_policy="rr")


def _spec():
    return WorkloadSpec(pattern="all2all", kind="open", seed=1,
                        message_bytes=2048, messages_per_client=2,
                        requests_per_client=2)


def _trace(tmp_path, n_shards):
    path = tmp_path / f"hb{n_shards}.json"
    run_cluster_sharded(_kwargs(), _spec(), n_shards,
                        backend="inline", trace_path=path)
    return json.loads(path.read_text())


@pytest.mark.parametrize("n_shards", (1, 2, 4))
def test_real_traces_verify_clean(tmp_path, n_shards):
    doc = _trace(tmp_path, n_shards)
    assert verify_trace(doc) == []
    if n_shards > 1:
        assert doc["events"], "sharded run recorded no boundary traffic"


def test_corrupted_trace_names_the_unordered_pair(tmp_path):
    doc = _trace(tmp_path, 2)

    # A send emitted inside the lookahead window.
    horizon = copy.deepcopy(doc)
    send = next(e for e in horizon["events"] if e["type"] == "send")
    send["emit"] = send["when"]
    violations = verify_trace(horizon)
    assert any("emission horizon" in v for v in violations)

    # Swap two sequence numbers on one channel: the verifier must
    # name both events of the unordered pair.
    swapped = copy.deepcopy(doc)
    by_chan = {}
    for e in swapped["events"]:
        if e["type"] == "send" and isinstance(e["key"][-1], int):
            by_chan.setdefault(tuple(e["key"][:-1]), []).append(e)
    chan = next(evs for evs in by_chan.values() if len(evs) >= 2)
    chan[0]["key"][-1], chan[1]["key"][-1] = \
        chan[1]["key"][-1], chan[0]["key"][-1]
    violations = verify_trace(swapped)
    assert any("unordered" in v and v.count("send(") == 2
               for v in violations)

    # A delivery whose send never happened.
    orphan = copy.deepcopy(doc)
    recv = next(e for e in orphan["events"] if e["type"] == "recv")
    recv["key"] = list(recv["key"][:-1]) + [10 ** 9]
    violations = verify_trace(orphan)
    assert any("without a boundary message" in v for v in violations)


def test_trace_file_roundtrip(tmp_path):
    doc = build_trace_doc([[{"type": "send", "shard": 0, "dest": 1,
                             "emit": 0.0, "when": 5.0,
                             "key": ["up", 0, 0, 0], "kind": "in"}],
                           [{"type": "recv", "shard": 1, "at": 4.0,
                             "when": 5.0, "key": ["up", 0, 0, 0],
                             "kind": "in"}]],
                          n_shards=2, lookahead_us=2.0)
    path = tmp_path / "t.json"
    path.write_text(json.dumps(doc))
    assert verify_trace_file(path) == []
    assert verify_trace_file(tmp_path / "missing.json") \
        != []


# ---------------------------------------------------------------------------
# Dynamic attribution (satellite: actor contexts in the fast paths)
# ---------------------------------------------------------------------------

def test_maybe_actor_is_free_when_disabled():
    assert not sanitize.is_enabled()
    assert sanitize.maybe_actor("x") is sanitize.maybe_actor("y")
    with sanitize.maybe_actor("x"):
        assert sanitize.current_actor(by_host=False) == "board"


def test_maybe_actor_attributes_when_enabled():
    with sanitize.enabled():
        with sanitize.maybe_actor("rx-processor"):
            assert sanitize.current_actor(by_host=False) \
                == "rx-processor"
    with sanitize.maybe_actor("rx-processor"):
        assert sanitize.current_actor(by_host=False) == "board"

"""RPC layer tests, including the NFS-style page-multiple workload."""

from repro.hw import DS5000_200
from repro.net import BackToBack
from repro.sim import spawn
from repro.xkernel.protocols.rpc import RpcClient, RpcProtocol, RpcServer

PAGE = DS5000_200.page_size
PROC_READ = 1
PROC_STAT = 2


def _rpc_pair(net, vci=600):
    """Client on host A, server on host B, raw driver paths."""
    drv_a = net.a.driver.open_path(vci=vci)
    client = RpcClient(RpcProtocol(net.a.cpu, net.a.sim), drv_a)
    drv_b = net.b.driver.open_path(vci=vci)
    server = RpcServer(RpcProtocol(net.b.cpu, net.b.sim), drv_b)
    return client, server


def test_call_reply_roundtrip():
    net = BackToBack(DS5000_200)
    client, server = _rpc_pair(net)
    server.register(PROC_STAT, lambda req: b"stat:" + req)
    result = {}

    def go():
        reply = yield from client.call(PROC_STAT, b"inode42")
        result["reply"] = reply

    spawn(net.sim, go(), "client")
    net.sim.run()
    assert result["reply"] == b"stat:inode42"
    assert server.rpc.calls_served == 1


def test_concurrent_calls_matched_by_xid():
    net = BackToBack(DS5000_200)
    client, server = _rpc_pair(net)
    server.register(PROC_STAT, lambda req: req[::-1])
    results = {}

    def caller(tag, payload):
        reply = yield from client.call(PROC_STAT, payload)
        results[tag] = reply

    spawn(net.sim, caller("x", b"abcdef"), "cx")
    spawn(net.sim, caller("y", b"123456"), "cy")
    net.sim.run()
    assert results == {"x": b"fedcba", "y": b"654321"}


def test_unknown_procedure_returns_empty():
    net = BackToBack(DS5000_200)
    client, server = _rpc_pair(net)
    result = {}

    def go():
        result["reply"] = yield from client.call(99, b"?")

    spawn(net.sim, go(), "client")
    net.sim.run()
    assert result["reply"] == b""


def test_nfs_style_block_reads_preserve_full_pages():
    """The section 2.5.2 scenario: 8 KB page-multiple NFS blocks.

    The page-boundary DMA discipline must deliver each block intact --
    full pages, no partial fill, no neighbouring-page bytes leaking in.
    """
    net = BackToBack(DS5000_200)
    client, server = _rpc_pair(net)
    blocks = {
        k: bytes([0x40 + k]) * (2 * PAGE) for k in range(4)
    }

    def read_block(request: bytes) -> bytes:
        return blocks[request[0]]

    server.register(PROC_READ, read_block, service_us=120.0)
    got = {}

    def go():
        for k in range(4):
            reply = yield from client.call(PROC_READ, bytes([k]))
            got[k] = reply

    spawn(net.sim, go(), "client")
    net.sim.run()
    for k in range(4):
        assert got[k] == blocks[k]
        assert len(got[k]) == 2 * PAGE  # full pages, exactly


def test_rpc_latency_dominated_by_round_trip():
    """A null call costs about one round trip plus service time."""
    net = BackToBack(DS5000_200)
    client, server = _rpc_pair(net)
    server.register(PROC_STAT, lambda req: b"ok")
    marks = {}

    def go():
        start = net.sim.now
        yield from client.call(PROC_STAT, b"")
        marks["rtt"] = net.sim.now - start

    spawn(net.sim, go(), "client")
    net.sim.run()
    # Raw-ATM 1-byte round trip is ~370 us on the DS; RPC adds its own
    # per-call costs but must stay in that regime.
    assert 300 < marks["rtt"] < 700

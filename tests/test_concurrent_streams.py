"""Concurrent data streams: many paths, one host pair.

The paper's VCI-per-path design means 'each of the potentially
hundreds of paths (connections) on a given host is bound to a VCI'.
These tests run several simultaneously active paths and check that
demultiplexing, buffer accounting and PDU framing never cross streams
-- including the interleaving of large (multi-buffer) PDUs.
"""

from repro.hw import DS5000_200
from repro.net import BackToBack
from repro.sim import Delay, spawn


def test_two_udp_streams_interleaved_large_messages():
    net = BackToBack(DS5000_200)
    a1, b1 = net.open_udp_pair(vci=401, port_a=100, port_b=200,
                               echo_b=False, keep_data=True)
    a2, b2 = net.open_udp_pair(vci=402, port_a=101, port_b=201,
                               echo_b=False, keep_data=True)
    # 40 KB messages: each spans several receive buffers, so buckets
    # of the two streams interleave in the receive queue.
    m1 = [bytes([0x10 + k]) * 40960 for k in range(3)]
    m2 = [bytes([0x80 + k]) * 40960 for k in range(3)]

    def sender(app, messages):
        def run():
            for data in messages:
                yield from app.send_message(data)
        return run()

    spawn(net.sim, sender(a1, m1), "s1")
    spawn(net.sim, sender(a2, m2), "s2")
    net.sim.run()
    assert [r.data for r in b1.receptions] == m1
    assert [r.data for r in b2.receptions] == m2


def test_many_paths_fan_in():
    net = BackToBack(DS5000_200)
    pairs = []
    for i in range(6):
        a, b = net.open_udp_pair(vci=500 + i, port_a=1000 + i,
                                 port_b=2000 + i, echo_b=False,
                                 keep_data=True)
        pairs.append((a, b))

    def sender(app, tag):
        def run():
            for k in range(4):
                yield from app.send_message(bytes([tag]) * (900 + k))
        return run()

    for i, (a, _b) in enumerate(pairs):
        spawn(net.sim, sender(a, 0x30 + i), f"s{i}")
    net.sim.run()
    for i, (_a, b) in enumerate(pairs):
        assert len(b.receptions) == 4
        for k, r in enumerate(b.receptions):
            assert r.data == bytes([0x30 + i]) * (900 + k)


def test_bidirectional_traffic():
    net = BackToBack(DS5000_200)
    a, b = net.open_udp_pair(vci=450, echo_b=False, keep_data=True)

    def talk(app, tag, count):
        def run():
            for _ in range(count):
                yield from app.send_message(bytes([tag]) * 1200)
                yield Delay(50.0)
        return run()

    spawn(net.sim, talk(a, 0x41, 8), "a->b")
    spawn(net.sim, talk(b, 0x42, 8), "b->a")
    net.sim.run()
    assert [r.data for r in b.receptions] == [b"\x41" * 1200] * 8
    assert [r.data for r in a.receptions] == [b"\x42" * 1200] * 8


def test_fbuf_path_pools_serve_hot_streams():
    """Sustained traffic on a path should mostly hit its cached-fbuf
    pool after warm-up (section 3.1's early-demux payoff)."""
    net = BackToBack(DS5000_200)
    a, b = net.open_udp_pair(vci=460, echo_b=False)

    def run():
        for _ in range(30):
            yield from a.send_message(b"\x55" * 2048)

    spawn(net.sim, run(), "s")
    net.sim.run()
    channel = net.b.board.kernel_channel
    assert len(b.receptions) == 30
    assert channel.cached_buffer_hits > channel.uncached_buffer_uses

"""Fixture: disciplined single-owner usage -- checks clean.

Every annotated contract below is honoured: one actor per SRSW
pointer, effectors invoked only by the boundary dispatcher, no
order-sensitive operations inside the fold, owned fields written
only by their owner.
"""


class DescriptorQueue:
    """Shared descriptor ring (fixture twin of osiris.queues).

    SRSW: head via push
    SRSW: tail via pop
    """

    def __init__(self):
        self.head = 0
        self.tail = 0

    def push(self, desc, by_host=True):
        self.head += 1

    def pop(self, by_host=True):
        self.tail += 1


class Channel:
    def __init__(self):
        self.tx_queue = DescriptorQueue()
        self.recv_queue = DescriptorQueue()


class TxProcessor:
    def __init__(self, channel: Channel):
        self.channel = channel

    def run(self):
        self.channel.tx_queue.pop(by_host=False)


class HostDriver:
    """Owner: host"""

    def __init__(self, channel: Channel):
        self.channel = channel

    def send(self, desc):
        self.channel.tx_queue.push(desc)

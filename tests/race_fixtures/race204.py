"""Fixture: RACE204 -- owned recovery state written off-owner.

``_records`` belongs to the boundary dispatcher (remote heartbeat
records arrive as boundary messages); the local heartbeat chain
(``Root: arm -> recovery``) writing it bypasses that ordering.
"""


class RecoveryManager:
    """Failure detector (fixture twin of recovery.manager).

    Root: arm -> recovery
    Owner: _records -> boundary
    Owner: probes_sent -> recovery
    Boundary: apply_remote
    """

    def __init__(self):
        self._records = {}
        self.probes_sent = 0

    def arm(self):
        self.probes_sent += 1
        self._records["self"] = 0  # RACE204

    def apply_remote(self, peer, stamp):
        self._records[peer] = stamp

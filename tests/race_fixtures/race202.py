"""Fixture: RACE202 -- cross-shard effector invoked off-boundary.

``CellSwitch.input_cell`` mutates state that remote shards observe;
only the boundary dispatcher may apply it.  Here the rx-processor
short-circuits the boundary message and calls the switch directly.
"""


class CellSwitch:
    """Output-queued switch (fixture twin of atm.switch)."""

    def input_cell(self, cell, key=None):
        pass


class RxProcessor:
    def __init__(self, switch: CellSwitch):
        self.switch = switch

    def deliver_upstream(self, cell):
        self.switch.input_cell(cell)  # RACE202

"""Fixture: RACE201 -- a second actor advances an SRSW pointer.

The transmit queue's tail pointer belongs to whichever actor first
pops it (here the tx-processor); the rx-processor popping the same
queue attribute is the paper's section 2.1.1 violation.
"""


class DescriptorQueue:
    """Shared descriptor ring (fixture twin of osiris.queues).

    SRSW: head via push
    SRSW: tail via pop
    """

    def __init__(self):
        self.head = 0
        self.tail = 0

    def push(self, desc, by_host=True):
        self.head += 1

    def pop(self, by_host=True):
        self.tail += 1


class Channel:
    def __init__(self):
        self.tx_queue = DescriptorQueue()


class TxProcessor:
    def __init__(self, channel: Channel):
        self.channel = channel

    def drain(self):
        self.channel.tx_queue.pop(by_host=False)


class RxProcessor:
    def __init__(self, channel: Channel):
        self.channel = channel

    def steal_tail(self):
        self.channel.tx_queue.pop(by_host=False)  # RACE201

"""Fixture: RACE203 -- order-sensitive operation inside a fold.

A fused cell-train commit must be order-insensitive: per-cell
expansion would interleave these ``put`` calls with other events at
the same timestamps, so a FIFO mutated inside the fold diverges from
the plain path.
"""


class TrainFolder:
    """Fused-commit surface (fixture twin of the switch fold).

    Fold: input_train
    """

    def __init__(self, fifo):
        self.fifo = fifo

    def input_train(self, train):
        for cell in train.cells:
            self.fifo.put(cell)  # RACE203
        return len(train.cells)

"""CRC, Internet checksum, and AAL5 framing tests."""

import pytest
from hypothesis import given, strategies as st

from repro.atm import (
    Aal5Error, BadCrc, BadLength, Cell, Reassembler, SegmentMode, cell_count,
    crc32, decode_pdu, encode_pdu, framed_size, internet_checksum,
    segment, verify_internet_checksum,
)


# -- CRC-32 -----------------------------------------------------------------

def test_crc32_known_vector():
    # The classic check value for the IEEE 802.3 polynomial.
    assert crc32(b"123456789") == 0xCBF43926


def test_crc32_empty():
    assert crc32(b"") == 0


def test_crc32_incremental_equals_whole():
    data = bytes(range(200))
    whole = crc32(data)
    partial = crc32(data[100:], crc32(data[:100]))
    assert partial == whole


@given(st.binary(max_size=300), st.integers(0, 299))
def test_crc32_detects_single_bit_flips(data, pos):
    if not data:
        return
    pos %= len(data)
    corrupted = bytearray(data)
    corrupted[pos] ^= 0x40
    assert crc32(data) != crc32(bytes(corrupted))


# -- Internet checksum --------------------------------------------------------

def test_internet_checksum_rfc1071_example():
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == (~0xDDF2) & 0xFFFF


def test_internet_checksum_verify_roundtrip():
    data = b"some UDP payload with odd length!"
    csum = internet_checksum(data)
    packet = data + csum.to_bytes(2, "big")
    # Verification sums data+checksum; for the odd-length layout here,
    # recomputing over the data must reproduce the stored value.
    assert internet_checksum(data) == csum
    assert csum != 0


@given(st.binary(min_size=2, max_size=128))
def test_internet_checksum_is_16_bit(data):
    assert 0 <= internet_checksum(data) <= 0xFFFF


def test_verify_internet_checksum_even_packet():
    data = b"ABCDEFGH"  # even length
    csum = internet_checksum(data)
    assert verify_internet_checksum(data + csum.to_bytes(2, "big"))
    bad = bytearray(data) + bytearray(csum.to_bytes(2, "big"))
    bad[0] ^= 0xFF
    assert not verify_internet_checksum(bytes(bad))


# -- AAL5 framing -------------------------------------------------------------

def test_framed_size_is_cell_multiple():
    for n in (0, 1, 35, 36, 37, 44, 100, 16384):
        assert framed_size(n) % 44 == 0
        assert framed_size(n) >= n + 8


def test_cell_count_examples():
    assert cell_count(1) == 1
    assert cell_count(36) == 1     # 36 + 8 trailer = 44 exactly
    assert cell_count(37) == 2
    assert cell_count(16 * 1024) == 373


def test_encode_decode_roundtrip():
    data = b"hello, AURORA testbed"
    assert decode_pdu(encode_pdu(data)) == data


@given(st.binary(max_size=2000))
def test_encode_decode_roundtrip_property(data):
    assert decode_pdu(encode_pdu(data)) == data


def test_decode_detects_corruption():
    framed = bytearray(encode_pdu(b"x" * 100))
    framed[10] ^= 0x01
    with pytest.raises(BadCrc):
        decode_pdu(bytes(framed))


def test_decode_detects_bad_length_field():
    framed = bytearray(encode_pdu(b"y" * 50))
    framed[-8:-4] = (9999).to_bytes(4, "big")
    with pytest.raises(BadLength):
        decode_pdu(bytes(framed))


def test_decode_rejects_non_cell_multiple():
    with pytest.raises(BadLength):
        decode_pdu(b"z" * 45)


# -- Segmentation -------------------------------------------------------------

def test_segment_in_order_single_eom():
    cells = segment(b"a" * 200, vci=5)
    assert len(cells) == cell_count(200)
    assert [c.eom for c in cells] == [False] * (len(cells) - 1) + [True]
    assert all(c.vci == 5 for c in cells)
    assert all(len(c.payload) == 44 for c in cells)
    assert all(c.seq is None for c in cells)


def test_segment_sequence_mode_numbers_cells():
    cells = segment(b"b" * 200, vci=7, mode=SegmentMode.SEQUENCE)
    assert [c.seq for c in cells] == list(range(len(cells)))
    assert cells[-1].eom and not cells[0].eom


def test_segment_concurrent_mode_marks_last_stripe_cells():
    cells = segment(b"c" * 400, vci=9, mode=SegmentMode.CONCURRENT,
                    stripe_width=4)
    n = len(cells)
    assert n >= 4
    assert all(c.eom for c in cells[-4:])
    assert not any(c.eom for c in cells[:-4])
    assert cells[-1].atm_last
    assert not any(c.atm_last for c in cells[:-1])


def test_segment_concurrent_short_pdu_all_eom():
    cells = segment(b"d" * 10, vci=9, mode=SegmentMode.CONCURRENT)
    assert len(cells) == 1
    assert cells[0].eom and cells[0].atm_last


def test_reassembler_roundtrip():
    data = b"PDU payload " * 30
    reasm = Reassembler(vci=3)
    cells = segment(data, vci=3)
    results = [reasm.push(c) for c in cells]
    assert results[:-1] == [None] * (len(cells) - 1)
    assert results[-1] == data
    assert reasm.pdus_completed == 1


def test_reassembler_rejects_wrong_vci():
    reasm = Reassembler(vci=3)
    with pytest.raises(Aal5Error):
        reasm.push(Cell(vci=4, payload=b"x" * 44, eom=True))


def test_reassembler_back_to_back_pdus():
    reasm = Reassembler(vci=1)
    for k in range(5):
        data = bytes([k]) * (50 + k)
        out = None
        for cell in segment(data, vci=1):
            out = reasm.push(cell)
        assert out == data
    assert reasm.pdus_completed == 5


@given(st.binary(max_size=1500))
def test_segment_reassemble_property(data):
    reasm = Reassembler(vci=0)
    out = None
    for cell in segment(data, vci=0):
        out = reasm.push(cell)
    assert out == data


def test_cell_rejects_oversized_payload():
    with pytest.raises(ValueError):
        Cell(vci=1, payload=b"x" * 45)


def test_cell_rejects_bad_vci():
    with pytest.raises(ValueError):
        Cell(vci=-1, payload=b"")
    with pytest.raises(ValueError):
        Cell(vci=70000, payload=b"")


# -- fault-model guarantee: any flipped bit is detected -----------------------
#
# The fault injector (repro.faults) flips one payload bit per corrupted
# cell and counts on the AAL5 trailer CRC to discard the enclosing PDU
# at the receiver.  That only holds if *every* bit position in a framed
# PDU -- body, padding, length field, or the CRC itself -- is covered.

@given(st.binary(max_size=500), st.integers(min_value=0,
                                            max_value=10**9))
def test_aal5_any_flipped_bit_raises(data, bit_seed):
    framed = encode_pdu(data)
    bit = bit_seed % (len(framed) * 8)
    corrupted = bytearray(framed)
    corrupted[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises((BadCrc, BadLength)):
        decode_pdu(bytes(corrupted))
    # The pristine frame still decodes: the flip, not the framing,
    # caused the failure.
    assert decode_pdu(framed) == data


def test_aal5_trailer_bit_flips_detected_exhaustively():
    # The 8 trailer bytes (length + CRC) are the subtle region: a
    # corrupted length can mimic a shorter or longer PDU.  Sweep every
    # bit of a whole small frame, trailer included.
    data = b"\xa5" * 100
    framed = encode_pdu(data)
    for bit in range(len(framed) * 8):
        corrupted = bytearray(framed)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises((BadCrc, BadLength)):
            decode_pdu(bytes(corrupted))

"""x-kernel Message (buffer chain) unit and property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.host import AddressSpace
from repro.hw import DS5000_200, DataCache, PhysicalMemory
from repro.sim import SimulationError
from repro.xkernel import Message


def _space():
    mem = PhysicalMemory(16 * 1024 * 1024, 4096,
                         reserved_bytes=2 * 1024 * 1024)
    return AddressSpace(mem, "t"), mem


def test_from_bytes_roundtrip():
    space, _ = _space()
    msg = Message.from_bytes(space, b"hello buffer chains")
    assert msg.length == 19
    assert msg.read_all() == b"hello buffer chains"


def test_push_header_adds_separate_segment():
    space, _ = _space()
    msg = Message.from_bytes(space, b"payload")
    before = msg.segment_count
    msg.push_header(b"HDR!")
    assert msg.segment_count == before + 1
    assert msg.read_all() == b"HDR!payload"
    # The header really is its own physical buffer (figure 1).
    assert len(msg.physical_buffers()) >= 2


def test_pop_bytes_strips_header():
    space, _ = _space()
    msg = Message.from_bytes(space, b"payload")
    msg.push_header(b"HDR!")
    assert msg.pop_bytes(4) == b"HDR!"
    assert msg.read_all() == b"payload"


def test_pop_bytes_can_split_a_segment():
    space, _ = _space()
    msg = Message.from_bytes(space, b"abcdefgh")
    assert msg.pop_bytes(3) == b"abc"
    assert msg.read_all() == b"defgh"
    assert msg.pop_bytes(5) == b"defgh"
    assert msg.length == 0


def test_pop_beyond_end_rejected():
    space, _ = _space()
    msg = Message.from_bytes(space, b"xy")
    with pytest.raises(SimulationError):
        msg.pop_bytes(3)


def test_subrange_shares_buffers_copy_free():
    space, mem = _space()
    msg = Message.from_bytes(space, b"0123456789" * 100)
    sub = msg.subrange(100, 50)
    assert sub.read_all() == (b"0123456789" * 100)[100:150]
    # Writing through the parent is visible in the view: same bytes.
    vaddr = msg.segments()[0][0]
    space.write(vaddr + 100, b"Z" * 10)
    assert sub.read_all()[:10] == b"Z" * 10


def test_truncate_drops_tail():
    space, _ = _space()
    msg = Message.from_bytes(space, b"keepdrop")
    msg.truncate(4)
    assert msg.read_all() == b"keep"
    with pytest.raises(SimulationError):
        msg.truncate(100)


def test_append_concatenates_and_adopts_release():
    space, _ = _space()
    released = []
    a = Message.from_bytes(space, b"first|")
    b = Message.from_bytes(space, b"second")
    b.add_release(lambda: released.append("b"))
    a.append(b)
    assert a.read_all() == b"first|second"
    a.release()
    assert released == ["b"]
    a.release()  # idempotent
    assert released == ["b"]


def test_read_through_cache_sees_stale_lines():
    space, mem = _space()
    cache = DataCache(DS5000_200.cache, mem)
    msg = Message.from_bytes(space, b"A" * 64)
    phys = msg.physical_buffers()[0]
    cache.read(phys.addr, 64)            # warm the lines
    mem.write(phys.addr, b"B" * 64)      # behind the cache's back
    assert msg.read_all() == b"B" * 64             # memory view
    assert msg.read_all(cache) == b"A" * 64        # stale cache view


def test_physical_buffers_cover_all_segments():
    space, _ = _space()
    msg = Message.from_bytes(space, b"d" * 10000, offset=123)
    msg.push_header(b"h" * 28)
    bufs = msg.physical_buffers()
    assert sum(b.length for b in bufs) == msg.length


@given(st.binary(min_size=1, max_size=5000),
       st.integers(0, 4095),
       st.lists(st.integers(1, 64), max_size=3))
def test_message_operations_property(data, offset, headers):
    """Push arbitrary headers, pop them all back, recover the data."""
    space, _ = _space()
    msg = Message.from_bytes(space, data, offset=offset)
    pushed = []
    for i, size in enumerate(headers):
        hdr = bytes([i % 256]) * size
        msg.push_header(hdr)
        pushed.append(hdr)
    for hdr in reversed(pushed):
        assert msg.pop_bytes(len(hdr)) == hdr
    assert msg.read_all() == data
    assert sum(b.length for b in msg.physical_buffers()) == len(data)


@given(st.binary(min_size=2, max_size=3000),
       st.data())
def test_subrange_property(data, draw):
    space, _ = _space()
    msg = Message.from_bytes(space, data)
    start = draw.draw(st.integers(0, len(data) - 1))
    length = draw.draw(st.integers(1, len(data) - start))
    assert msg.subrange(start, length).read_all() == \
        data[start:start + length]

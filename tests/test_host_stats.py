"""Host statistics snapshot tests."""

from repro.hw import DS5000_200
from repro.net import BackToBack, HostStats
from repro.sim import spawn


def test_snapshot_after_traffic():
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        for _ in range(5):
            yield from app_a.send_length(4096)

    spawn(net.sim, go(), "s")
    net.sim.run()

    a = net.a.stats()
    b = net.b.stats()
    assert isinstance(a, HostStats)
    assert a.pdus_sent == 5
    assert b.pdus_received == 5
    assert a.cells_sent == b.cells_received
    assert b.interrupts_serviced >= 1
    assert a.pages_wired > 0
    assert 0.0 < a.bus_utilization < 1.0
    assert b.rx_dma_transactions > 0
    assert b.rx_fifo_drops == 0


def test_render_is_human_readable():
    net = BackToBack(DS5000_200)
    net.sim.run_until(10.0)
    text = net.a.stats().render()
    assert "Host 'a'" in text
    assert "bus_utilization" in text
    assert "pdus_sent" in text


def test_snapshot_is_frozen_value():
    net = BackToBack(DS5000_200)
    before = net.a.stats()
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        yield from app_a.send_length(1024)

    spawn(net.sim, go(), "s")
    net.sim.run()
    after = net.a.stats()
    assert before.pdus_sent == 0     # old snapshot unchanged
    assert after.pdus_sent == 1

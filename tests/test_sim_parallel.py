"""Unit tests for the conservative window engine, on toy programs.

The ring relay below is the smallest model with the fabric's shape:
every cross-shard message is stamped one lookahead after the emitting
event.  It runs identically under all three backends.
"""

import pytest

from repro.cluster.boundary import BoundaryCodec
from repro.sim import SimulationError, Simulator
from repro.sim.parallel import BACKENDS, run_shards

W = 2.0


class RingRelay:
    """A token hops shard -> shard+1 every W; each hop is logged."""

    def __init__(self, index: int, n_shards: int, hops: int):
        self.sim = Simulator()
        self.index = index
        self.n_shards = n_shards
        self.hops = hops
        self.log = []
        self._outbox = []
        if index == 0:
            self.sim.call_at(1.0, lambda: self._hop(0))

    def _hop(self, k: int) -> None:
        self.log.append((self.sim.now, k))
        if k + 1 >= self.hops:
            return
        dest = (self.index + 1) % self.n_shards
        when = self.sim.now + W
        if dest == self.index:
            self.sim.call_at(when, lambda: self._hop(k + 1),
                             key=("hop", k + 1))
        else:
            self._outbox.append((dest, when, ("hop", k + 1),
                                 ("hop", k + 1)))

    def deliver(self, batch):
        for when, key, msg in batch:
            _tag, k = msg
            self.sim.call_at(when, lambda k=k: self._hop(k), key=key)

    def drain_outbox(self):
        out, self._outbox = self._outbox, []
        return out

    def collect(self, t_end):
        return {"index": self.index, "log": self.log,
                "now": self.sim.now}


def _ring(index, n_shards=3, hops=12):
    return RingRelay(index, n_shards, hops)


@pytest.mark.parametrize("backend", BACKENDS)
def test_ring_relay_all_backends(backend):
    run = run_shards(lambda i: _ring(i), 3, W, backend=backend)
    merged = sorted((entry for p in run.partials for entry in p["log"]))
    assert merged == [(1.0 + W * k, k) for k in range(12)]
    assert run.t_end == 1.0 + W * 11
    assert run.events_processed == 12
    # advance_to(t_end) ran everywhere: idle shards read the global
    # end time, which is what makes merged snapshots consistent.
    assert all(p["now"] == run.t_end for p in run.partials)


def test_single_shard_runs_to_completion():
    run = run_shards(lambda i: RingRelay(i, 1, 8), 1, W,
                     backend="inline")
    assert run.partials[0]["log"] == [(1.0 + W * k, k)
                                      for k in range(8)]


def test_idle_peers_do_not_throttle_a_lone_busy_shard():
    # Shard 1 never has an event.  With per-shard horizons the busy
    # shard's bound is its own frontier plus TWO lookaheads (the
    # shortest possible echo path), so it needs about half as many
    # windows as events -- and far fewer than a global-window engine.
    hops = 40
    run = run_shards(lambda i: RingRelay(i, 1, hops) if i == 0
                     else RingRelay(1, 2, 0), 2, W, backend="inline")
    assert len(run.partials[0]["log"]) == hops
    assert run.windows <= hops // 2 + 2


def test_worker_exception_surfaces_with_shard_index():
    class Boom(RingRelay):
        def _hop(self, k):
            raise RuntimeError("kaboom at hop")

    with pytest.raises(SimulationError, match=r"(?s)shard 0.*kaboom"):
        run_shards(lambda i: Boom(i, 2, 4), 2, W, backend="thread")


def test_engine_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 2, 0.0)
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 0, W)
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 2, W, backend="nope")


# ----------------------------------------------------------- coalescing


class SelfLooper:
    """Dense local events, provably no cross-shard emission: the
    workload shape window coalescing exists for."""

    def __init__(self, index: int, events: int = 20):
        self.sim = Simulator()
        self.index = index
        self.log = []
        self._remaining = events
        self.sim.call_at(1.0, self._tick)

    def may_emit(self) -> bool:
        return False

    def _tick(self) -> None:
        self.log.append(self.sim.now)
        self._remaining -= 1
        if self._remaining:
            self.sim.call_after(0.5, self._tick)

    def deliver(self, batch):
        raise AssertionError("nothing should reach a SelfLooper")

    def drain_outbox(self):
        return []

    def probe(self):
        return {"index": self.index, "done": len(self.log)}

    def collect(self, t_end):
        return {"index": self.index, "log": self.log}


def test_non_capable_shards_coalesce_to_one_window():
    runs = {}
    for coalesce in (True, False):
        runs[coalesce] = run_shards(lambda i: SelfLooper(i), 2, W,
                                    backend="inline", coalesce=coalesce)
    # Ten lookaheads of local work: the fixed schedule pays a barrier
    # per W, the coalesced one drains everything in a single window.
    assert runs[True].windows == 1
    assert runs[False].windows > 3
    assert runs[True].boundary_msgs == 0
    assert [p["log"] for p in runs[True].partials] \
        == [p["log"] for p in runs[False].partials]


def test_window_probe_fires_per_coalesced_window():
    for coalesce, expected in ((True, 1), (False, None)):
        probes = []
        run = run_shards(lambda i: SelfLooper(i), 2, W,
                         backend="inline", coalesce=coalesce,
                         window_probe=lambda w, counters:
                         probes.append((w, counters)))
        assert len(probes) == run.windows
        if expected is not None:
            assert len(probes) == expected
        # The final probe is a true quiescence snapshot either way.
        assert all(c["done"] == 20 for c in probes[-1][1])


class Sender:
    """Emits ``n_msgs`` messages to shard 1, one per lookahead."""

    def __init__(self, n_msgs: int):
        self.sim = Simulator()
        self._outbox = []
        for k in range(n_msgs):
            self.sim.call_at(1.0 + W * k, lambda k=k: self._emit(k))

    def _emit(self, k: int) -> None:
        self._outbox.append((1, self.sim.now + W, ("m", k), ("m", k)))

    def deliver(self, batch):
        raise AssertionError("nothing sends to the Sender")

    def drain_outbox(self):
        out, self._outbox = self._outbox, []
        return out

    def collect(self, t_end):
        return {"sent": True}


class Sink:
    """Deliver-only and provably non-emitting: with coalescing its
    deliveries must be deferred and batched, not trickled."""

    def __init__(self):
        self.sim = Simulator()
        self.received = []
        self.deliver_calls = 0

    def may_emit(self) -> bool:
        return False

    def deliver(self, batch):
        self.deliver_calls += 1
        for when, key, msg in batch:
            self.sim.call_at(
                when,
                lambda m=msg: self.received.append((self.sim.now, m)),
                key=key)

    def drain_outbox(self):
        return []

    def collect(self, t_end):
        return {"received": self.received,
                "deliver_calls": self.deliver_calls}


def test_deliver_only_sink_batches_into_one_window():
    n_msgs = 6
    runs = {}
    for coalesce in (True, False):
        runs[coalesce] = run_shards(
            lambda i: Sender(n_msgs) if i == 0 else Sink(), 2, W,
            backend="inline", coalesce=coalesce)
    want = [(1.0 + W * (k + 1), ("m", k)) for k in range(n_msgs)]
    for run in runs.values():
        assert run.partials[1]["received"] == want
        assert run.boundary_msgs == n_msgs
    # Deferred deliver-only commands coalesce into a single flush;
    # the fixed schedule wakes the sink repeatedly.
    assert runs[True].partials[1]["deliver_calls"] == 1
    assert runs[False].partials[1]["deliver_calls"] > 1


# ---------------------------------------------------------------- codec


class CodecRing(RingRelay):
    """RingRelay over the struct transport.  ``("hop", k)`` keys and
    messages have no fixed record, so every boundary message rides an
    escape record -- the transport must be transparent even then."""

    def __init__(self, *args):
        super().__init__(*args)
        self.codec = BoundaryCodec()


@pytest.mark.parametrize("backend", BACKENDS)
def test_codec_transport_is_transparent(backend):
    plain = run_shards(lambda i: _ring(i), 3, W, backend="inline")
    coded = run_shards(lambda i: CodecRing(i, 3, 12), 3, W,
                       backend=backend)
    assert [p["log"] for p in coded.partials] \
        == [p["log"] for p in plain.partials]
    assert coded.t_end == plain.t_end
    # 11 of the 12 hops cross a shard boundary; both transports must
    # agree on the message count, and the codec must report the bytes
    # it actually shipped.
    assert coded.boundary_msgs == plain.boundary_msgs == 11
    assert coded.boundary_bytes > 0
    assert plain.boundary_bytes > 0

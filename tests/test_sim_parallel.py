"""Unit tests for the conservative window engine, on toy programs.

The ring relay below is the smallest model with the fabric's shape:
every cross-shard message is stamped one lookahead after the emitting
event.  It runs identically under all three backends.
"""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.parallel import BACKENDS, run_shards

W = 2.0


class RingRelay:
    """A token hops shard -> shard+1 every W; each hop is logged."""

    def __init__(self, index: int, n_shards: int, hops: int):
        self.sim = Simulator()
        self.index = index
        self.n_shards = n_shards
        self.hops = hops
        self.log = []
        self._outbox = []
        if index == 0:
            self.sim.call_at(1.0, lambda: self._hop(0))

    def _hop(self, k: int) -> None:
        self.log.append((self.sim.now, k))
        if k + 1 >= self.hops:
            return
        dest = (self.index + 1) % self.n_shards
        when = self.sim.now + W
        if dest == self.index:
            self.sim.call_at(when, lambda: self._hop(k + 1),
                             key=("hop", k + 1))
        else:
            self._outbox.append((dest, when, ("hop", k + 1),
                                 ("hop", k + 1)))

    def deliver(self, batch):
        for when, key, msg in batch:
            _tag, k = msg
            self.sim.call_at(when, lambda k=k: self._hop(k), key=key)

    def drain_outbox(self):
        out, self._outbox = self._outbox, []
        return out

    def collect(self, t_end):
        return {"index": self.index, "log": self.log,
                "now": self.sim.now}


def _ring(index, n_shards=3, hops=12):
    return RingRelay(index, n_shards, hops)


@pytest.mark.parametrize("backend", BACKENDS)
def test_ring_relay_all_backends(backend):
    run = run_shards(lambda i: _ring(i), 3, W, backend=backend)
    merged = sorted((entry for p in run.partials for entry in p["log"]))
    assert merged == [(1.0 + W * k, k) for k in range(12)]
    assert run.t_end == 1.0 + W * 11
    assert run.events_processed == 12
    # advance_to(t_end) ran everywhere: idle shards read the global
    # end time, which is what makes merged snapshots consistent.
    assert all(p["now"] == run.t_end for p in run.partials)


def test_single_shard_runs_to_completion():
    run = run_shards(lambda i: RingRelay(i, 1, 8), 1, W,
                     backend="inline")
    assert run.partials[0]["log"] == [(1.0 + W * k, k)
                                      for k in range(8)]


def test_idle_peers_do_not_throttle_a_lone_busy_shard():
    # Shard 1 never has an event.  With per-shard horizons the busy
    # shard's bound is its own frontier plus TWO lookaheads (the
    # shortest possible echo path), so it needs about half as many
    # windows as events -- and far fewer than a global-window engine.
    hops = 40
    run = run_shards(lambda i: RingRelay(i, 1, hops) if i == 0
                     else RingRelay(1, 2, 0), 2, W, backend="inline")
    assert len(run.partials[0]["log"]) == hops
    assert run.windows <= hops // 2 + 2


def test_worker_exception_surfaces_with_shard_index():
    class Boom(RingRelay):
        def _hop(self, k):
            raise RuntimeError("kaboom at hop")

    with pytest.raises(SimulationError, match=r"(?s)shard 0.*kaboom"):
        run_shards(lambda i: Boom(i, 2, 4), 2, W, backend="thread")


def test_engine_rejects_bad_parameters():
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 2, 0.0)
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 0, W)
    with pytest.raises(SimulationError):
        run_shards(lambda i: _ring(i), 2, W, backend="nope")

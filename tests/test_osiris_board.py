"""Board layout, demux tables and buffer pool tests."""

import pytest

from repro.osiris import N_CHANNELS
from repro.sim import SimulationError



def test_board_has_16_channels(rig):
    assert len(rig.board.channels) == N_CHANNELS
    # Queues live in disjoint dual-port regions.
    bases = set()
    for ch in rig.board.channels:
        for q in (ch.tx_queue, ch.free_queue, ch.recv_queue):
            assert q.base not in bases
            bases.add(q.base)


def test_queues_sized_per_paper(rig):
    ch = rig.board.kernel_channel
    # (paper) free/receive queues of 64 buffers each, 16 KB buffers.
    assert ch.free_queue.size == 64
    assert ch.recv_queue.size == 64
    assert rig.board.spec.recv_buffer_bytes == 372 * 44  # ~16 KB
    assert rig.board.spec.dualport_bytes == 128 * 1024


def test_vci_binding(rig):
    rig.board.bind_vci(10, 3)
    assert rig.board.vci_table[10] == 3
    assert 10 in rig.board.channels[3].vcis
    with pytest.raises(SimulationError):
        rig.board.bind_vci(10, 4)
    rig.board.unbind_vci(10)
    assert 10 not in rig.board.vci_table


def test_open_close_channel(rig):
    ch = rig.board.open_channel(2, priority=1, allowed_pages={0x1000})
    assert ch.open
    with pytest.raises(SimulationError):
        rig.board.open_channel(2)
    rig.board.bind_vci(33, 2)
    rig.board.close_channel(2)
    assert not ch.open
    assert 33 not in rig.board.vci_table


def test_free_buffer_intake_sorts_pools(rig):
    ch = rig.board.kernel_channel
    rig.feed_free_buffers(2, vci=0)        # anonymous
    rig.feed_free_buffers(3, vci=9)        # cached fbufs for path 9
    taken = rig.board.intake_free_buffers(ch)
    assert taken == 5
    assert len(ch.anon_pool) == 2
    assert len(ch.path_pools[9]) == 3


def test_take_receive_buffer_prefers_path_pool(rig):
    ch = rig.board.kernel_channel
    rig.feed_free_buffers(1, vci=0)
    rig.feed_free_buffers(1, vci=9)
    desc = rig.board.take_receive_buffer(ch, vci=9)
    assert desc.vci == 9
    assert ch.cached_buffer_hits == 1
    # Path pool exhausted: falls back to the anonymous pool.
    desc2 = rig.board.take_receive_buffer(ch, vci=9)
    assert desc2.vci == 0
    assert ch.uncached_buffer_uses == 1
    assert rig.board.take_receive_buffer(ch, vci=9) is None


def test_page_authorization(rig):
    page = rig.machine.page_size
    ch = rig.board.open_channel(1, allowed_pages={4 * page, 5 * page})
    assert ch.page_authorized(4 * page, 100, page)
    assert ch.page_authorized(4 * page + 100, 2 * page - 200, page)
    assert not ch.page_authorized(3 * page, 10, page)
    assert not ch.page_authorized(5 * page, page + 1, page)  # runs into 6


def test_kernel_channel_unrestricted(rig):
    ch = rig.board.kernel_channel
    assert ch.page_authorized(0x123456, 99999, rig.machine.page_size)


def test_rx_fifo_drops_when_full(rig):
    from repro.atm import Cell
    for _ in range(rig.board.spec.fifo_cells + 5):
        rig.board.deliver_cell(Cell(vci=1, payload=b""))
    assert rig.board.rx_fifo_drops == 5

"""Event tracer tests."""

from repro.hw import DS5000_200
from repro.net import BackToBack
from repro.sim import Simulator, Tracer, attach_board_tracer, \
    attach_driver_tracer, spawn


def test_emit_and_select():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a", "x", "one")
    sim.call_after(5.0, lambda: tracer.emit("b", "y"))
    sim.run()
    assert tracer.count() == 2
    assert tracer.count(component="a") == 1
    assert tracer.select(event="y")[0].time == 5.0


def test_capacity_drops_and_reports():
    sim = Simulator()
    tracer = Tracer(sim, capacity=3)
    for i in range(5):
        tracer.emit("c", "e", str(i))
    assert len(tracer.records) == 3
    assert tracer.dropped == 2
    assert "2 records dropped" in tracer.render()


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.enabled = False
    tracer.emit("a", "x")
    assert tracer.count() == 0


def test_intervals_pairing():
    sim = Simulator()
    tracer = Tracer(sim)
    times = [(1.0, "start"), (3.0, "end"), (10.0, "start"), (14.0, "end")]
    for t, event in times:
        sim.call_at(t, lambda e=event: tracer.emit("c", e))
    sim.run()
    assert tracer.intervals("c", "start", "end") == [(1.0, 2.0),
                                                     (10.0, 4.0)]


def test_summary_counts():
    sim = Simulator()
    tracer = Tracer(sim)
    for _ in range(3):
        tracer.emit("board", "cell-arrival")
    tracer.emit("driver", "send-pdu")
    summary = tracer.summary()
    assert "cell-arrival" in summary and "3" in summary


def test_traced_end_to_end_run():
    net = BackToBack(DS5000_200)
    tracer = Tracer(net.sim)
    attach_board_tracer(tracer, net.b.board)
    attach_driver_tracer(tracer, net.a.driver)
    attach_driver_tracer(tracer, net.b.driver)
    app_a, app_b = net.open_udp_pair(echo_b=False)

    def go():
        yield from app_a.send_length(4096)

    spawn(net.sim, go(), "s")
    net.sim.run()
    assert len(app_b.receptions) == 1
    # One cell-arrival per cell on the wire.
    arrivals = tracer.count("board", "cell-arrival")
    assert arrivals == net.link_ab.cells_sent
    assert tracer.count("driver", "send-pdu") == 1
    assert tracer.count("driver", "deliver-pdu") >= 1
    assert tracer.count("board", "interrupt") >= 1
    # The timeline renders without error and in time order.
    rendered = tracer.render(limit=50)
    assert "cell-arrival" in rendered
    times = [r.time for r in tracer.records]
    assert times == sorted(times)

"""Reliable datagram protocol (RDP) tests.

RDP runs over the same session machinery as UDP/IP -- the x-kernel's
protocol-independence claim -- and supplies the error detection the
lazy cache-invalidation scheme of section 2.3 relies on.
"""


from repro.hw import DS5000_200
from repro.net import BackToBack
from repro.sim import spawn
from repro.xkernel import RdpProtocol, RdpSession, TestProgram


def _rdp_pair(net, vci=500, **proto_kw):
    """RDP sessions on both hosts over raw driver paths."""
    sides = []
    for host in (net.a, net.b):
        drv = host.driver.open_path(vci=vci)
        proto = RdpProtocol(host.cpu, host.sim, cache=host.cache,
                            cache_policy=host.driver.cache_policy,
                            **proto_kw)
        session = RdpSession(proto, drv)
        app = TestProgram(host.test, session, keep_data=True)
        sides.append((proto, session, app))
    return sides


def test_reliable_delivery_in_order():
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(net)
    payloads = [bytes([k]) * (300 + k * 17) for k in range(10)]

    def go():
        for data in payloads:
            yield from aa.send_message(data)
        ok = yield from sa.wait_all_acked()
        assert ok

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert [r.data for r in ab.receptions] == payloads
    assert pa.retransmissions == 0


def test_window_limits_outstanding_data():
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(net, window=2)
    n = 8

    def go():
        for k in range(n):
            yield from aa.send_message(bytes([k]) * 200)
        yield from sa.wait_all_acked()

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(ab.receptions) == n


class _LossyLink:
    """Drops selected PDUs at the driver boundary of host A."""

    def __init__(self, host, drop_indices):
        self.count = 0
        self.drop = set(drop_indices)
        self.dropped = 0
        real = host.driver.send_pdu
        driver = host.driver

        def lossy(msg, vci, _real=real):
            index = self.count
            self.count += 1
            if index in self.drop:
                self.dropped += 1
                return
                yield  # pragma: no cover
            yield from _real(msg, vci)

        driver.send_pdu = lossy


def test_retransmission_recovers_lost_data():
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(
        net, retransmit_timeout_us=2000.0)
    loss = _LossyLink(net.a, drop_indices={1})  # lose the second PDU
    payloads = [b"first" * 40, b"second" * 40, b"third" * 40]

    def go():
        for data in payloads:
            yield from aa.send_message(data)
        ok = yield from sa.wait_all_acked()
        assert ok

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert [r.data for r in ab.receptions] == payloads
    assert pa.retransmissions > 0
    assert loss.dropped == 1
    # Go-back-N resends in order; the receiver drops what it had.
    assert pb.duplicates_dropped >= 1


def test_sender_gives_up_when_peer_unreachable():
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(
        net, retransmit_timeout_us=500.0, max_retries=3)
    # Sever the link: every outgoing PDU from A is dropped.
    _LossyLink(net.a, drop_indices=set(range(10000)))

    def go():
        yield from aa.send_message(b"into the void")
        ok = yield from sa.wait_all_acked()
        assert not ok

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert sa.failed
    assert ab.receptions == []
    assert pa.retransmissions == 3


def test_acks_do_not_reach_the_application():
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(net)

    def go():
        yield from aa.send_message(b"one message")
        yield from sa.wait_all_acked()

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(ab.receptions) == 1
    assert aa.receptions == []  # acks are protocol-internal


def test_rdp_detects_stale_cache_data():
    """RDP's payload checksum plays the section 2.3 role: a stale line
    in the receive buffer is detected, recovered, and acknowledged."""
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(
        net, retransmit_timeout_us=3000.0)
    # Pre-warm host B's cache over its first receive buffer.
    net.b.cache.read(0, net.b.board.spec.recv_buffer_bytes)

    def go():
        yield from aa.send_message(b"will be stale" * 60)
        ok = yield from sa.wait_all_acked()
        assert ok

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert ab.receptions[0].data == b"will be stale" * 60
    recovered = (pb.stale_recoveries
                 + net.b.driver.cache_policy.lazy_recoveries)
    assert recovered >= 1


def test_receive_overrun_recovered_by_retransmission():
    """A real overrun: on the DECstation, checksumming every received
    byte over the shared bus caps absorption near 80 Mbps while the
    link delivers ~300.  An unpaced window overruns the 64-cell board
    FIFO; go-back-N grinds through timeouts but delivers everything."""
    net = BackToBack(DS5000_200)
    (pa, sa, aa), (pb, sb, ab) = _rdp_pair(
        net, window=8, retransmit_timeout_us=2000.0, max_retries=30)
    n = 6

    def go():
        for k in range(n):
            yield from aa.send_message(bytes([0x50 + k]) * 8192)
        ok = yield from sa.wait_all_acked()
        assert ok

    spawn(net.sim, go(), "sender")
    net.sim.run()
    # Cells genuinely overflowed the board FIFO...
    assert net.b.board.rx_fifo_drops > 0
    assert pa.retransmissions > 0
    # ...yet every message arrived intact and in order.
    assert [r.data for r in ab.receptions] == \
        [bytes([0x50 + k]) * 8192 for k in range(n)]

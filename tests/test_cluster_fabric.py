"""Fabric tests: wiring, VCI routing, clone helper, conservation."""

import pytest

from repro.atm import SkewModel
from repro.cluster import FIRST_FLOW_VCI, Fabric, VciAllocator
from repro.hw import DS5000_200
from repro.net import BackToBack
from repro.sim import SimulationError, spawn


def test_flow_routed_and_rewritten_through_switch():
    """Client and server each keep their own VCI; the switch rewrites
    in both directions, and an echo completes the round trip."""
    fab = Fabric(DS5000_200, 4)
    app_s, app_d, flow = fab.open_raw_flow(1, 0, echo_dst=True,
                                           keep_data=True)
    assert flow.src_vci != flow.dst_vci
    payload = b"across the fabric " * 30

    def go():
        yield from app_s.send_message(payload)

    spawn(fab.sim, go(), "g")
    fab.sim.run()
    assert app_d.receptions[0].data == payload
    assert len(app_s.receptions) == 1  # the echo came back
    assert fab.switches[0].cells_switched > 0
    assert fab.switches[0].cells_dropped == 0


def test_flow_crosses_two_switches():
    """Hosts land round-robin on switches, so 0->1 is inter-switch;
    the first hop keeps the VCI, the last hop rewrites."""
    fab = Fabric(DS5000_200, 4, n_switches=2)
    app_s, app_d, _ = fab.open_raw_flow(0, 1, keep_data=True)
    payload = b"two hops " * 40

    def go():
        yield from app_s.send_message(payload)

    spawn(fab.sim, go(), "g")
    fab.sim.run()
    assert app_d.receptions[0].data == payload
    assert fab.switches[0].cells_switched > 0
    assert fab.switches[1].cells_switched > 0
    conservation = fab.conservation()
    assert conservation["holds"]
    assert conservation["delivered"] == conservation["injected"]


def test_same_switch_flow_with_two_switches():
    """0 and 2 both sit on switch 0: single-hop route."""
    fab = Fabric(DS5000_200, 4, n_switches=2)
    app_s, app_d, _ = fab.open_raw_flow(0, 2, keep_data=True)

    def go():
        yield from app_s.send_message(b"one hop " * 25)

    spawn(fab.sim, go(), "g")
    fab.sim.run()
    assert app_d.receptions[0].data == b"one hop " * 25
    assert fab.switches[1].cells_switched == 0


def test_udp_flow_over_fabric():
    fab = Fabric(DS5000_200, 3)
    app_s, app_d, _ = fab.open_udp_flow(2, 0, keep_data=True)
    data = b"udp over the switch" * 100

    def go():
        yield from app_s.send_message(data)

    spawn(fab.sim, go(), "g")
    fab.sim.run()
    assert app_d.receptions[0].data == data


def test_vci_allocator_unique_and_bounded():
    alloc = VciAllocator(first=10, last=12)
    assert [alloc.alloc() for _ in range(3)] == [10, 11, 12]
    with pytest.raises(SimulationError):
        alloc.alloc()


def test_flow_vcis_fabric_unique():
    fab = Fabric(DS5000_200, 4)
    flows = [fab.open_flow(i, j)
             for i in range(4) for j in range(4) if i != j]
    vcis = [v for f in flows for v in (f.src_vci, f.dst_vci)]
    assert len(set(vcis)) == len(vcis)
    assert min(vcis) == FIRST_FLOW_VCI


def test_bad_flow_endpoints_rejected():
    fab = Fabric(DS5000_200, 2)
    with pytest.raises(SimulationError):
        fab.open_flow(0, 0)
    with pytest.raises(SimulationError):
        fab.open_flow(0, 5)


def test_conservation_mid_run_counts_queued_cells():
    """The invariant must hold while cells are still in flight, with
    the queued term measured from link/switch counters."""
    fab = Fabric(DS5000_200, 4)
    apps = [fab.open_raw_flow(i, 0)[0] for i in range(1, 4)]

    def sender(app):
        def go():
            for _ in range(4):
                yield from app.send_message(b"\x5A" * 8192)
        return go

    for k, app in enumerate(apps):
        spawn(fab.sim, sender(app)(), f"s{k}")
    fab.sim.run_until(400.0)
    conservation = fab.conservation()
    assert conservation["injected"] > 0
    assert conservation["holds"]
    # Run to quiescence: everything must land somewhere final.
    fab.sim.run()
    conservation = fab.conservation()
    assert conservation["holds"]
    assert conservation["queued"] == 0


def test_backtoback_is_direct_fabric_special_case():
    net = BackToBack(DS5000_200)
    assert isinstance(net, Fabric)
    assert net.topology == "direct"
    assert net.switches == []
    app_a, app_b = net.open_raw_pair(echo_b=False)

    def go():
        yield from app_a.send_length(4096)

    spawn(net.sim, go(), "g")
    net.sim.run()
    assert len(app_b.receptions) == 1
    conservation = net.conservation()
    assert conservation["holds"]
    assert conservation["delivered"] == conservation["injected"]
    assert conservation["dropped"] == 0


def test_direct_topology_needs_exactly_two_hosts():
    with pytest.raises(SimulationError):
        Fabric(DS5000_200, 3, topology="direct")


def test_skew_clone_reproduces_hand_copied_model():
    """clone(seed_offset=1) is exactly the old hand-copied reverse-link
    construction of BackToBack."""
    base = SkewModel.severe(seed=0x1234)
    hand = SkewModel(fixed_offsets_us=base.fixed_offsets_us,
                     mux_amplitude_us=base.mux_amplitude_us,
                     mux_period_cells=base.mux_period_cells,
                     switch_jitter_us=base.switch_jitter_us,
                     seed=base.seed + 1)
    cloned = SkewModel.severe(seed=0x1234).clone(1)
    for link in range(4):
        hand_fn, clone_fn = hand.delay_fn(link), cloned.delay_fn(link)
        assert [hand_fn() for _ in range(64)] == \
               [clone_fn() for _ in range(64)]


def test_skew_clone_zero_offset_has_independent_state():
    base = SkewModel.severe()
    clone = base.clone(0)
    fn = base.delay_fn(0)
    samples_before = [fn() for _ in range(8)]
    # Drawing from the original must not perturb the clone's stream.
    clone_fn = clone.delay_fn(0)
    assert [clone_fn() for _ in range(8)] == samples_before

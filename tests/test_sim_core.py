"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_orders_by_time():
    sim = Simulator()
    fired = []
    sim.call_after(5.0, lambda: fired.append("b"))
    sim.call_after(1.0, lambda: fired.append("a"))
    sim.call_after(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.call_after(3.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list(range(10))


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    timer = sim.call_after(1.0, lambda: fired.append("x"))
    timer.cancel()
    sim.run()
    assert fired == []
    assert timer.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.call_after(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_run_until_only_runs_due_events():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: fired.append("early"))
    sim.call_after(100.0, lambda: fired.append("late"))
    sim.run_until(50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_after(2.0, lambda: fired.append("chained"))

    sim.call_after(1.0, first)
    sim.run()
    assert fired == ["first", "chained"]
    assert sim.now == 3.0


def test_peek_skips_cancelled_entries():
    sim = Simulator()
    t1 = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    t1.cancel()
    assert sim.peek() == 2.0


def test_run_while_stops_on_predicate():
    sim = Simulator()
    count = []

    def tick():
        count.append(1)
        sim.call_after(1.0, tick)

    sim.call_after(1.0, tick)
    sim.run_while(lambda: len(count) < 5)
    assert len(count) == 5


def test_run_while_livelock_guard():
    sim = Simulator()

    def tick():
        sim.call_now(tick)

    sim.call_now(tick)
    with pytest.raises(SimulationError):
        sim.run_while(lambda: True, max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.call_after(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_pending_counts_only_live_timers():
    sim = Simulator()
    timers = [sim.call_after(float(i + 1), lambda: None)
              for i in range(10)]
    for timer in timers[:4]:
        timer.cancel()
    assert sim.pending == 6


def test_cancel_heavy_heap_compacts():
    # White-box: mass-cancelling must shrink the heap itself, not
    # just mark entries dead, or cancel-heavy models go quadratic.
    sim = Simulator()
    timers = [sim.call_after(float(i + 1), lambda: None)
              for i in range(1000)]
    for timer in timers[:-1]:
        timer.cancel()
    assert sim.pending == 1
    assert len(sim._heap) < 100
    sim.run()
    assert sim.now == 1000.0


def test_run_window_is_strict_and_does_not_clamp():
    sim = Simulator()
    fired = []
    for t in (1.0, 2.0, 3.0):
        sim.call_at(t, lambda t=t: fired.append(t))
    ran = sim.run_window(2.5)
    assert ran == 2
    assert fired == [1.0, 2.0]
    assert sim.now == 2.0          # not clamped to the horizon
    assert sim.peek() == 3.0
    assert sim.run_window(3.0) == 0   # event AT the horizon stays put
    assert sim.run_window(3.5) == 1


def test_advance_to_moves_idle_clock_and_guards_live_events():
    sim = Simulator()
    sim.call_after(5.0, lambda: None)
    sim.run()
    sim.advance_to(20.0)
    assert sim.now == 20.0
    sim.advance_to(20.0)           # idempotent at the same time
    sim.call_after(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.advance_to(30.0)       # would skip a live event


def test_keys_order_same_time_events_content_based():
    from repro.sim import NO_KEY
    sim = Simulator()
    fired = []
    sim.call_at(5.0, lambda: fired.append("b"), key=("b", 0))
    sim.call_at(5.0, lambda: fired.append("a"), key=("a", 7))
    sim.call_at(5.0, lambda: fired.append("plain"), key=NO_KEY)
    sim.run()
    # Keyless events sort before any keyed event at the same time;
    # keyed events sort by key, independent of insertion order.
    assert fired == ["plain", "a", "b"]


def test_same_key_same_time_falls_back_to_schedule_order():
    sim = Simulator()
    fired = []
    sim.call_at(1.0, lambda: fired.append(1), key=("k", 0))
    sim.call_at(1.0, lambda: fired.append(2), key=("k", 0))
    sim.run()
    assert fired == [1, 2]

"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_orders_by_time():
    sim = Simulator()
    fired = []
    sim.call_after(5.0, lambda: fired.append("b"))
    sim.call_after(1.0, lambda: fired.append("a"))
    sim.call_after(9.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 9.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.call_after(3.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == list(range(10))


def test_call_at_in_past_raises():
    sim = Simulator()
    sim.call_after(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    timer = sim.call_after(1.0, lambda: fired.append("x"))
    timer.cancel()
    sim.run()
    assert fired == []
    assert timer.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    timer = sim.call_after(1.0, lambda: None)
    timer.cancel()
    timer.cancel()
    sim.run()


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run_until(42.0)
    assert sim.now == 42.0


def test_run_until_only_runs_due_events():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: fired.append("early"))
    sim.call_after(100.0, lambda: fired.append("late"))
    sim.run_until(50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_after(2.0, lambda: fired.append("chained"))

    sim.call_after(1.0, first)
    sim.run()
    assert fired == ["first", "chained"]
    assert sim.now == 3.0


def test_peek_skips_cancelled_entries():
    sim = Simulator()
    t1 = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    t1.cancel()
    assert sim.peek() == 2.0


def test_run_while_stops_on_predicate():
    sim = Simulator()
    count = []

    def tick():
        count.append(1)
        sim.call_after(1.0, tick)

    sim.call_after(1.0, tick)
    sim.run_while(lambda: len(count) < 5)
    assert len(count) == 5


def test_run_while_livelock_guard():
    sim = Simulator()

    def tick():
        sim.call_now(tick)

    sim.call_now(tick)
    with pytest.raises(SimulationError):
        sim.run_while(lambda: True, max_events=100)


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.call_after(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7

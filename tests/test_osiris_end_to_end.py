"""Board-to-board integration over the striped link.

Two OSIRIS boards linked back-to-back (as in the paper's testbed),
including skew injection and both skew-tolerant reassembly modes.
"""

from repro.atm import SegmentMode, SkewModel, StripedLink, decode_pdu
from repro.hw.dma import DmaMode
from repro.osiris import RxProcessor, TxProcessor



class _Pair:
    """Two boards sharing one simulator, wired by a striped link."""

    def __init__(self, mode=SegmentMode.IN_ORDER, skew=None,
                 rx_dma_mode=DmaMode.SINGLE_CELL):
        from repro.hw import (
            DataCache, DS5000_200, PhysicalMemory,
            TurboChannel,
        )
        from repro.osiris import OsirisBoard
        from repro.sim import Fidelity, Simulator

        self.sim = Simulator()
        self.rigs = []
        for side in range(2):
            machine = DS5000_200
            fidelity = Fidelity.full()
            memory = PhysicalMemory(8 * 1024 * 1024, machine.page_size,
                                    fidelity=fidelity,
                                    reserved_bytes=4 * 1024 * 1024)
            cache = DataCache(machine.cache, memory, fidelity)
            tc = TurboChannel(self.sim, machine.bus, name=f"tc{side}")
            board = OsirisBoard(self.sim, machine, tc, memory, cache,
                                fidelity=fidelity,
                                rx_dma_mode=rx_dma_mode)
            self.rigs.append((memory, board))
        self.tx_memory, self.tx_board = self.rigs[0]
        self.rx_memory, self.rx_board = self.rigs[1]
        self.link = StripedLink(self.sim, self.rx_board.deliver_cell,
                                skew=skew)
        self.txp = TxProcessor(self.sim, self.tx_board, link=self.link,
                               segment_mode=mode)
        self.rxp = RxProcessor(self.sim, self.rx_board,
                               reassembly_mode=mode)

    def send(self, data, vci):
        from repro.osiris import Descriptor, FLAG_END_OF_PDU
        addr = self.tx_memory.alloc_contiguous(max(len(data), 1))
        self.tx_memory.write(addr, data)
        desc = Descriptor(addr=addr, length=len(data),
                          flags=FLAG_END_OF_PDU, vci=vci)
        assert self.tx_board.kernel_channel.tx_queue.push(desc)

    def receive_buffers(self, count, vci=0):
        from repro.osiris import Descriptor
        size = self.rx_board.spec.recv_buffer_bytes
        for _ in range(count):
            addr = self.rx_memory.alloc_contiguous(size)
            self.rx_board.kernel_channel.free_queue.push(
                Descriptor(addr=addr, length=size, vci=vci))

    def received_pdus(self):
        out = []
        current = bytearray()
        while True:
            desc = self.rx_board.kernel_channel.recv_queue.pop(by_host=True)
            if desc is None:
                break
            current += self.rx_memory.read(desc.addr, desc.length)
            if desc.end_of_pdu:
                out.append(decode_pdu(bytes(current)))
                current = bytearray()
        return out


def test_in_order_transfer_no_skew():
    pair = _Pair()
    pair.rx_board.bind_vci(5, 0)
    pair.receive_buffers(8)
    data = b"host to host over AURORA " * 40
    pair.send(data, vci=5)
    pair.sim.run()
    assert pair.received_pdus() == [data]


def test_many_pdus_both_reassembled():
    pair = _Pair()
    pair.rx_board.bind_vci(5, 0)
    pair.receive_buffers(16)
    pdus = [bytes([k]) * (500 + 13 * k) for k in range(6)]
    for pdu in pdus:
        pair.send(pdu, vci=5)
    pair.sim.run()
    assert pair.received_pdus() == pdus


def test_sequence_mode_survives_skew():
    pair = _Pair(mode=SegmentMode.SEQUENCE, skew=SkewModel.severe(seed=3))
    pair.rx_board.bind_vci(7, 0)
    pair.receive_buffers(8)
    data = b"skewed transfer " * 100
    pair.send(data, vci=7)
    pair.sim.run()
    assert pair.received_pdus() == [data]


def test_concurrent_mode_survives_skew():
    # PDUs are spaced beyond the skew window: the timed receive path
    # supports one open PDU per VCI (see rx_processor docstring); the
    # fully pipelined algorithm is property-tested in test_atm_sar.
    from repro.sim import Delay, spawn

    pair = _Pair(mode=SegmentMode.CONCURRENT,
                 skew=SkewModel.severe(seed=11))
    pair.rx_board.bind_vci(7, 0)
    pair.receive_buffers(8)
    pdus = [b"A" * 3000, b"B" * 120, b"C" * 44]

    def sender():
        for pdu in pdus:
            pair.send(pdu, vci=7)
            yield Delay(500.0)

    spawn(pair.sim, sender(), "sender")
    pair.sim.run()
    assert pair.received_pdus() == pdus


def test_in_order_mode_corrupts_under_skew():
    """Plain AAL5 reassembly + skew => CRC failures, not silent
    corruption (the reason section 2.6 needs a strategy at all)."""
    pair = _Pair(mode=SegmentMode.IN_ORDER,
                 skew=SkewModel.severe(offset_step_us=8.0,
                                       jitter_us=20.0, seed=5))
    pair.rx_board.bind_vci(7, 0)
    pair.receive_buffers(16)
    for k in range(4):
        pair.send(bytes([k]) * 2000, vci=7)
    pair.sim.run()
    # At least one PDU must have failed reassembly (CRC error or
    # framing confusion); none may decode to wrong bytes silently.
    ok = pair.rxp.pdus_received - pair.rxp.pdus_errored
    assert pair.rxp.pdus_errored > 0 or ok < 4


def test_double_cell_combining_drops_under_skew():
    no_skew = _Pair(rx_dma_mode=DmaMode.DOUBLE_CELL,
                    mode=SegmentMode.SEQUENCE)
    no_skew.rx_board.bind_vci(5, 0)
    no_skew.receive_buffers(8)
    no_skew.send(b"n" * 8000, vci=5)
    no_skew.sim.run()
    rate_no_skew = no_skew.rxp.combined_dmas / max(
        1, no_skew.rxp.combined_dmas + no_skew.rxp.single_dmas)

    skewed = _Pair(rx_dma_mode=DmaMode.DOUBLE_CELL,
                   mode=SegmentMode.SEQUENCE,
                   skew=SkewModel.severe(seed=9))
    skewed.rx_board.bind_vci(5, 0)
    skewed.receive_buffers(8)
    skewed.send(b"n" * 8000, vci=5)
    skewed.sim.run()
    rate_skewed = skewed.rxp.combined_dmas / max(
        1, skewed.rxp.combined_dmas + skewed.rxp.single_dmas)

    # Section 2.6: 'Once skew is introduced, the probability that two
    # successive cells will be received in order is greatly reduced.'
    assert rate_no_skew > 0.35
    assert rate_skewed < rate_no_skew * 0.6
    assert skewed.received_pdus() == [b"n" * 8000]

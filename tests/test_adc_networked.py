"""ADCs across a real network: two hosts, the receiver's application
owns a device channel.

The board demultiplexes the incoming VCI straight to the application's
queue pair; the receiving kernel fields one interrupt and otherwise
never touches the data.
"""


from repro.adc import AdcChannelDriver, AdcManager
from repro.hw import DEC3000_600, DS5000_200
from repro.net import BackToBack
from repro.sim import spawn
from repro.xkernel.protocols.testproto import TestProgram


def _adc_receiver(net):
    manager = AdcManager(net.b.kernel, net.b.board)
    domain = net.b.kernel.create_domain("app-b")
    grant = manager.open(domain, n_rx_buffers=8)
    driver = AdcChannelDriver(net.b.sim, net.b.kernel, net.b.board,
                              grant, net.b.driver)
    session = driver.open_path()
    app = TestProgram(net.b.test, session, keep_data=True)
    return grant, driver, app


def test_network_delivery_into_adc():
    net = BackToBack(DS5000_200)
    grant, driver, app_b = _adc_receiver(net)
    # The sender's kernel path transmits on the ADC's VCI.
    sender = net.a.driver.open_path(vci=grant.vcis[0])
    app_a = TestProgram(net.a.test, sender)
    payload = b"over the wire, into user space " * 30

    def go():
        yield from app_a.send_message(payload)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert app_b.receptions[0].data == payload
    # The receiving kernel driver never saw the PDU.
    assert net.b.driver.pdus_received == 0
    assert driver.pdus_received == 1
    assert net.b.board.channels[1].pdus_received == 1


def test_adc_and_kernel_paths_coexist():
    """Kernel traffic and ADC traffic demux independently by VCI."""
    net = BackToBack(DS5000_200)
    grant, driver, adc_app = _adc_receiver(net)
    kernel_a, kernel_b = net.open_udp_pair(vci=700, echo_b=False,
                                           keep_data=True)
    adc_sender = net.a.driver.open_path(vci=grant.vcis[0])
    adc_app_a = TestProgram(net.a.test, adc_sender)

    def go():
        yield from kernel_a.send_message(b"kernel bound" * 20)
        yield from adc_app_a.send_message(b"user bound" * 20)
        yield from kernel_a.send_message(b"kernel again" * 20)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert [r.data for r in kernel_b.receptions] == \
        [b"kernel bound" * 20, b"kernel again" * 20]
    assert adc_app.receptions[0].data == b"user bound" * 20


def test_adc_multi_pdu_stream_recycles_its_buffers():
    net = BackToBack(DS5000_200)
    grant, driver, app_b = _adc_receiver(net)
    sender = net.a.driver.open_path(vci=grant.vcis[0])
    app_a = TestProgram(net.a.test, sender)
    count = 25  # more PDUs than the ADC's 8 buffers

    def go():
        for k in range(count):
            yield from app_a.send_message(bytes([k]) * 900)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert len(app_b.receptions) == count
    assert [r.data for r in app_b.receptions] == \
        [bytes([k]) * 900 for k in range(count)]
    assert grant.channel.cells_dropped == 0


def test_adc_on_alpha():
    net = BackToBack(DEC3000_600)
    grant, driver, app_b = _adc_receiver(net)
    sender = net.a.driver.open_path(vci=grant.vcis[0])
    app_a = TestProgram(net.a.test, sender)

    def go():
        yield from app_a.send_message(b"alpha adc" * 100)

    spawn(net.sim, go(), "sender")
    net.sim.run()
    assert app_b.receptions[0].data == b"alpha adc" * 100

"""Runtime-sanitizer tests: SRSW ownership, monotone time, horizon
discipline, per-window conservation, and -- the load-bearing one --
byte-identity of sanitized runs."""

import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import (
    SanitizerError, SimSanitizer, check_window_conservation,
)
from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.cluster.sharded import run_cluster_sharded
from repro.faults import FaultPlan
from repro.hw import DualPortMemory
from repro.osiris import Descriptor, DescriptorQueue
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _always_disable():
    yield
    sanitize.disable()


def _queue(name="txq"):
    return DescriptorQueue(DualPortMemory(8192), 0, 8,
                           host_is_writer=True, name=name)


def _desc(i):
    return Descriptor(addr=0x1000 * (i + 1), length=64, vci=1)


# -- SRSW ownership ----------------------------------------------------------

def test_two_writer_queue_raises_naming_queue_and_both_actors():
    with sanitize.enabled():
        queue = _queue(name="shared-tx")
        with sanitize.actor("driver-a"):
            queue.push(_desc(0))
        with sanitize.actor("driver-b"):
            with pytest.raises(SanitizerError) as err:
                queue.push(_desc(1))
    message = str(err.value)
    assert "shared-tx" in message
    assert "driver-a" in message and "driver-b" in message
    assert "head" in message


def test_disciplined_queue_is_silent():
    with sanitize.enabled():
        queue = _queue()
        for i in range(12):         # wraps the ring twice
            assert queue.push(_desc(i))
            assert queue.pop() is not None


def test_two_reader_tail_also_raises():
    with sanitize.enabled():
        queue = _queue()
        queue.push(_desc(0))
        queue.push(_desc(1))
        with sanitize.actor("rx-a"):
            queue.pop()
        with sanitize.actor("rx-b"):
            with pytest.raises(SanitizerError, match="tail"):
                queue.pop()


def test_hook_is_off_by_default():
    queue = _queue()
    with sanitize.actor("a"):
        queue.push(_desc(0))
    with sanitize.actor("b"):
        queue.push(_desc(1))        # no sanitizer, no error


# -- simulator-core discipline -----------------------------------------------

def test_monotone_time_watchdog():
    watchdog = SimSanitizer()
    watchdog.on_event(5.0)
    watchdog.on_event(5.0)
    with pytest.raises(SanitizerError, match="backwards"):
        watchdog.on_event(4.0)


def test_horizon_watchdog():
    watchdog = SimSanitizer()
    watchdog.window_begin(10.0)
    watchdog.on_event(9.9)
    with pytest.raises(SanitizerError, match="horizon"):
        watchdog.on_event(10.0)
    watchdog.window_end()
    watchdog.on_event(10.0)         # fine outside a window
    watchdog.window_begin(20.0)
    with pytest.raises(SanitizerError, match="nested"):
        watchdog.window_begin(30.0)


def test_simulator_carries_sanitizer_only_when_enabled():
    assert Simulator().sanitizer is None
    with sanitize.enabled():
        sim = Simulator()
        assert isinstance(sim.sanitizer, SimSanitizer)
        sim.call_at(1.0, lambda: None)
        assert sim.run_window(5.0) == 1
        assert sim.sanitizer._last_time == 1.0
    assert Simulator().sanitizer is None


# -- window-boundary conservation --------------------------------------------

def _probe(**overrides):
    base = {"uplink_cells_sent": 10, "uplink_arrived": 8,
            "delivered": 6, "corrupted": 1, "uplink_fault_lost": 1,
            "isw_in_flight": 0, "cross_injected": 0,
            "switch_queued": 1, "dropped": 0, "switch_fault_lost": 0}
    base.update(overrides)
    return base


def test_window_conservation_balanced():
    # injected 10 = delivered 6 + corrupted 1 + queued (10-8-1+0+1=2)
    # + dropped 0 + lost 1.
    check_window_conservation(3, [_probe()])


def test_window_conservation_violation_names_window():
    with pytest.raises(SanitizerError, match="window 7"):
        check_window_conservation(7, [_probe(delivered=5)])


def test_window_conservation_sums_across_shards():
    # An inter-switch cell that crossed shards: the source counted
    # +1 in flight at emission, the destination counted -1 when it
    # absorbed the cell into its switch queue.  Only the sum over
    # shards is meaningful -- and it balances.
    src = _probe(isw_in_flight=1, delivered=5)
    dst = _probe(uplink_cells_sent=0, uplink_arrived=0,
                 uplink_fault_lost=0, delivered=0, corrupted=0,
                 switch_queued=1, isw_in_flight=-1,
                 cross_injected=0)
    check_window_conservation(1, [src, dst])


# -- byte-identity of sanitized runs -----------------------------------------

def _kwargs(**extra):
    from repro.hw.specs import DS5000_200
    return {"machines": DS5000_200, "n_hosts": 4, "n_switches": 1,
            "backpressure": "credit", "credit_window_cells": 64,
            "drain_policy": "rr", **extra}


def _spec():
    return WorkloadSpec(pattern="all2all", kind="open", seed=1,
                        message_bytes=2048, messages_per_client=2)


@pytest.mark.parametrize("faulted", (False, True))
def test_sanitized_sharded_run_is_byte_identical(faulted):
    kwargs = _kwargs()
    if faulted:
        kwargs["faults"] = FaultPlan.parse("loss=0.01,corrupt=0.002",
                                           seed=1)
        kwargs["credit_regen_timeout_us"] = 500.0
    plain, _run = run_cluster_sharded(kwargs, _spec(), 2,
                                      backend="thread")
    sanitized, _run = run_cluster_sharded(kwargs, _spec(), 2,
                                          backend="thread",
                                          sanitize=True)
    assert sanitized.to_json() == plain.to_json()


def test_sanitized_plain_fabric_run_is_byte_identical():
    fabric = Fabric(**_kwargs())
    baseline = collect(fabric, run_workload(fabric, _spec())).to_json()
    with sanitize.enabled():
        fabric = Fabric(**_kwargs())
        report = collect(fabric,
                         run_workload(fabric, _spec())).to_json()
    assert report == baseline

"""Transmit processor tests: segmentation, DMA discipline, interrupts."""

from repro.atm import Reassembler, SegmentMode, cell_count
from repro.hw.dma import DmaMode
from repro.osiris import InterruptKind, TxProcessor

from conftest import BoardRig


def _collect_tx(rig, **kw):
    cells = []
    txp = TxProcessor(rig.sim, rig.board, deliver=cells.append, **kw)
    return txp, cells


def _reassemble(cells, vci):
    reasm = Reassembler(vci)
    out = []
    for cell in cells:
        pdu = reasm.push(cell)
        if pdu is not None:
            out.append(pdu)
    return out


def test_single_buffer_pdu_roundtrip(rig):
    txp, cells = _collect_tx(rig)
    data = b"the first victim of segmentation and reassembly" * 10
    rig.queue_pdu(data, vci=5)
    rig.sim.run()
    assert _reassemble(cells, 5) == [data]
    assert txp.pdus_sent == 1
    assert len(cells) == cell_count(len(data))


def test_multi_buffer_pdu_roundtrip(rig):
    txp, cells = _collect_tx(rig)
    data = bytes(range(256)) * 8  # 2048 bytes
    rig.queue_pdu(data, vci=5, buffer_split=[100, 948, 1000])
    rig.sim.run()
    assert _reassemble(cells, 5) == [data]


def test_empty_queue_processor_waits(rig):
    txp, cells = _collect_tx(rig)
    rig.sim.run()
    assert cells == []
    assert not txp.process.done


def test_back_to_back_pdus(rig):
    txp, cells = _collect_tx(rig)
    pdus = [bytes([k]) * (80 + k) for k in range(4)]
    for pdu in pdus:
        rig.queue_pdu(pdu, vci=5)
    rig.sim.run()
    assert _reassemble(cells, 5) == pdus


def test_single_cell_mode_dma_counts(rig):
    txp, cells = _collect_tx(rig)
    data = b"z" * 440  # exactly 10 payloads of data, 11 cells framed
    rig.queue_pdu(data, vci=1)
    rig.sim.run()
    # 440 data bytes in one page-aligned buffer: 10 full-cell DMAs.
    assert rig.board.tx_dma.transactions == 10
    assert rig.board.tx_dma.bytes_moved == 440
    assert len(cells) == cell_count(440)


def test_double_cell_mode_halves_transactions():
    rig = BoardRig(tx_dma_mode=DmaMode.DOUBLE_CELL)
    txp, cells = _collect_tx(rig)
    data = b"z" * 440
    rig.queue_pdu(data, vci=1)
    rig.sim.run()
    assert rig.board.tx_dma.transactions == 5
    assert _reassemble(cells, 1) == [data]


def test_page_boundary_split(rig):
    """A buffer ending mid-cell at a page boundary needs the two-address
    DMA continuation of section 2.5.2."""
    txp, cells = _collect_tx(rig)
    # Two buffers: 20 bytes then 24 bytes -> one 44-byte cell, two DMAs.
    data = b"pq" * 22
    rig.queue_pdu(data, vci=1, buffer_split=[20, 24])
    rig.sim.run()
    assert rig.board.tx_dma.transactions == 2
    assert _reassemble(cells, 1) == [data]


def test_trailer_only_cell_has_no_dma(rig):
    txp, cells = _collect_tx(rig)
    data = b"x" * 44  # data fills cell 1 exactly; cell 2 is pad+trailer
    rig.queue_pdu(data, vci=1)
    rig.sim.run()
    assert len(cells) == 2
    assert rig.board.tx_dma.transactions == 1
    assert _reassemble(cells, 1) == [data]


def test_sequence_mode_numbers_continue_across_pdus(rig):
    txp, cells = _collect_tx(rig, segment_mode=SegmentMode.SEQUENCE)
    rig.queue_pdu(b"a" * 100, vci=1)
    rig.queue_pdu(b"b" * 100, vci=1)
    rig.sim.run()
    n = cell_count(100)
    assert [c.seq for c in cells] == list(range(2 * n))


def test_priority_orders_channels(rig):
    rig.board.open_channel(1, priority=0)
    rig.board.open_channel(2, priority=5)
    txp, cells = _collect_tx(rig)
    rig.queue_pdu(b"low" * 20, vci=22, channel_id=2)
    rig.queue_pdu(b"high" * 20, vci=11, channel_id=1)
    rig.sim.run()
    assert cells[0].vci == 11  # high priority goes out first
    vcis = [c.vci for c in cells]
    assert vcis.index(22) > vcis.index(11)


def test_protection_violation_drops_pdu_and_interrupts(rig):
    from repro.osiris import Descriptor, FLAG_END_OF_PDU
    page = rig.machine.page_size
    channel = rig.board.open_channel(1, allowed_pages={7 * page})
    irqs = []
    rig.board.irq.register_handler(lambda kind, ch: irqs.append((kind, ch)))
    txp, cells = _collect_tx(rig)
    bad = Descriptor(addr=3 * page, length=50, flags=FLAG_END_OF_PDU, vci=2)
    assert channel.tx_queue.push(bad)
    rig.sim.run()
    assert cells == []
    assert txp.violations == 1
    assert irqs == [(InterruptKind.PROTECTION_VIOLATION, 1)]


def test_tx_space_interrupt_at_half_empty(rig):
    irqs = []
    rig.board.irq.register_handler(lambda kind, ch: irqs.append(kind))
    txp, cells = _collect_tx(rig)
    channel = rig.board.kernel_channel
    # Fill the queue with single-buffer PDUs until full.
    queued = 0
    while True:
        from repro.osiris import Descriptor, FLAG_END_OF_PDU
        addr = rig.memory.alloc_contiguous(64)
        rig.memory.write(addr, b"f" * 60)
        desc = Descriptor(addr=addr, length=60,
                          flags=FLAG_END_OF_PDU, vci=1)
        if not channel.tx_queue.push(desc):
            break
        queued += 1
    # Host found the queue full: requests the transmit-space interrupt.
    rig.board.tx_interrupt_wanted.add(0)
    rig.sim.run()
    assert InterruptKind.TRANSMIT_SPACE in irqs
    assert irqs.count(InterruptKind.TRANSMIT_SPACE) == 1
    assert txp.pdus_sent == queued


def test_timing_only_fidelity_still_counts(rig):
    from repro.sim import Fidelity
    rig2 = BoardRig(fidelity=Fidelity.timing_only())
    cells = []
    txp = TxProcessor(rig2.sim, rig2.board, deliver=cells.append)
    rig2.queue_pdu(b"\x00" * 1000, vci=1)
    rig2.sim.run()
    assert len(cells) == cell_count(1000)
    assert all(c.payload == b"" for c in cells)
    assert rig2.board.tx_dma.bytes_moved == 1000


def test_tx_timing_is_roughly_single_cell_rate(rig):
    """44 bytes per ~0.98 us => just under the 367 Mbps DMA ceiling
    on an idle bus (descriptor PIO and per-PDU setup take the rest)."""
    txp, cells = _collect_tx(rig)
    data = b"m" * 16384
    rig.queue_pdu(data, vci=1)
    rig.sim.run()
    mbps = len(data) * 8.0 / rig.sim.now
    assert 300 < mbps < 367

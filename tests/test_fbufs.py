"""Fbuf allocator and transfer tests (section 3.1)."""

import pytest

from repro.baselines import compare_cross_domain
from repro.fbufs import FbufAllocator
from repro.hw import DS5000_200, DataCache, HostCPU, MemorySystem, \
    PhysicalMemory, TurboChannel
from repro.host import HostOS
from repro.sim import SimulationError, Simulator, spawn


def _kernel():
    sim = Simulator()
    memory = PhysicalMemory(16 * 1024 * 1024, 4096,
                            reserved_bytes=2 * 1024 * 1024)
    cache = DataCache(DS5000_200.cache, memory)
    tc = TurboChannel(sim, DS5000_200.bus)
    cpu = HostCPU(sim, DS5000_200, MemorySystem(sim, DS5000_200, tc))
    return sim, HostOS(sim, cpu, cache, memory)


def test_first_allocation_is_uncached():
    sim, kernel = _kernel()
    alloc = FbufAllocator(kernel)
    alloc.register_path(1, [kernel.create_domain("app")])
    fbuf, cached = alloc.allocate(1)
    assert not cached
    assert alloc.uncached_allocations == 1


def test_released_buffer_comes_back_cached():
    sim, kernel = _kernel()
    alloc = FbufAllocator(kernel)
    domain = kernel.create_domain("app")
    alloc.register_path(1, [domain])
    fbuf, _ = alloc.allocate(1)
    fbuf.mapped_domains.add(domain.name)  # simulated traversal
    alloc.release(fbuf, 1)
    again, cached = alloc.allocate(1)
    assert cached
    assert again is fbuf
    assert domain.name in again.mapped_domains


def test_unknown_path_rejected():
    sim, kernel = _kernel()
    alloc = FbufAllocator(kernel)
    with pytest.raises(SimulationError):
        alloc.allocate(99)


def test_mru_eviction_clears_mappings():
    sim, kernel = _kernel()
    alloc = FbufAllocator(kernel, cached_paths=2)
    domains = {}
    for pid in (1, 2, 3):
        domains[pid] = kernel.create_domain(f"d{pid}")
        alloc.register_path(pid, [domains[pid]])
    fbuf, _ = alloc.allocate(1)
    fbuf.mapped_domains.add(domains[1].name)
    alloc.release(fbuf, 1)
    # Touch two other paths: path 1 falls out of the 2-entry MRU.
    alloc.allocate(2)
    alloc.allocate(3)
    refetched, cached = alloc.allocate(1)
    assert not cached
    assert not refetched.mapped_domains or refetched is not fbuf


def test_cached_transfer_is_order_of_magnitude_cheaper():
    """The section 3.1 claim, measured through the cost model."""
    sim, kernel = _kernel()
    alloc = FbufAllocator(kernel)
    domain = kernel.create_domain("server")
    alloc.register_path(1, [domain])
    times = {}

    def rig():
        fbuf, _ = alloc.allocate(1)
        start = sim.now
        yield from alloc.transfer(fbuf, 1, domain)  # uncached: maps
        times["uncached"] = sim.now - start
        start = sim.now
        yield from alloc.transfer(fbuf, 1, domain)  # now cached
        times["cached"] = sim.now - start

    spawn(sim, rig())
    sim.run()
    assert times["uncached"] > times["cached"] * 8


def test_cross_domain_comparison_ordering():
    """Cached fbufs beat uncached fbufs beat copies, for 16 KB
    buffers across two domains on the DECstation."""
    result = compare_cross_domain(DS5000_200, buffer_bytes=16 * 1024,
                                  n_domains=2, n_buffers=30)
    assert result.cached_fbuf_mbps > result.uncached_fbuf_mbps
    assert result.uncached_fbuf_mbps > result.copy_mbps
    assert result.cached_fbuf_mbps > 8 * result.copy_mbps


def test_more_domains_hurt_copies_most():
    two = compare_cross_domain(DS5000_200, 16 * 1024, n_domains=2,
                               n_buffers=20)
    three = compare_cross_domain(DS5000_200, 16 * 1024, n_domains=3,
                                 n_buffers=20)
    bits = 16 * 1024 * 8
    copy_extra_us = bits / three.copy_mbps - bits / two.copy_mbps
    cached_extra_us = (bits / three.cached_fbuf_mbps
                       - bits / two.cached_fbuf_mbps)
    # The third domain costs a copy path ~domain_crossing + a full
    # 16 KB copy; a cached fbuf pays only the fixed handoff.
    assert copy_extra_us > 20 * cached_extra_us

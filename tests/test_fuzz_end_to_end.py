"""Property-based fuzzing of the full board rig.

Hypothesis drives random PDU size mixes, VCI assignments and DMA modes
through the complete receive machinery, asserting the invariant that
matters: every delivered byte equals the transmitted byte, in order,
per stream, and every buffer is accounted for.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.atm import decode_pdu, segment
from repro.hw.dma import DmaMode
from repro.osiris import RxProcessor
from repro.sim import spawn

from conftest import BoardRig


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    pdu_sizes=st.lists(st.integers(1, 40000), min_size=1, max_size=8),
    dma_double=st.booleans(),
    seed=st.integers(0, 2**16),
)
def test_receive_path_fuzz(pdu_sizes, dma_double, seed):
    rig = BoardRig(rx_dma_mode=(DmaMode.DOUBLE_CELL if dma_double
                                else DmaMode.SINGLE_CELL))
    rig.board.bind_vci(5, 0)
    rig.feed_free_buffers(24)
    rxp = RxProcessor(rig.sim, rig.board, flow_controlled=True)

    import random
    rng = random.Random(seed)
    pdus = [bytes([rng.randrange(256) for _ in range(min(size, 64))])
            * (size // min(size, 64) + 1) for size in pdu_sizes]
    pdus = [p[:size] for p, size in zip(pdus, pdu_sizes, strict=True)]

    cells = []
    for pdu in pdus:
        cells += segment(pdu, vci=5)

    def feeder():
        for cell in cells:
            yield rig.board.rx_fifo.put(cell)

    spawn(rig.sim, feeder(), "feeder")
    rig.sim.run()
    framed = rig.reassemble_host_side(rig.drain_received())
    assert [decode_pdu(f) for f in framed] == pdus
    assert rxp.pdus_errored == 0
    assert rxp.cells_dropped_no_buffer == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    streams=st.lists(
        st.tuples(st.integers(10, 2000), st.integers(1, 4)),
        min_size=2, max_size=4),
    seed=st.integers(0, 2**16),
)
def test_multi_vci_receive_fuzz(streams, seed):
    """Interleave cells of several VCIs arbitrarily; per-VCI streams
    must come out intact and ordered."""
    import random
    rng = random.Random(seed)
    rig = BoardRig()
    rxp = RxProcessor(rig.sim, rig.board, flow_controlled=True)
    rig.feed_free_buffers(32)

    expected = {}
    per_stream_cells = []
    for index, (size, count) in enumerate(streams):
        vci = 10 + index
        rig.board.bind_vci(vci, 0)
        pdus = [bytes([index * 16 + k % 16]) * size for k in range(count)]
        expected[vci] = pdus
        cells = []
        for pdu in pdus:
            cells += segment(pdu, vci=vci)
        per_stream_cells.append(cells)

    # Merge preserving per-stream order (streams may interleave).
    merged = []
    cursors = [0] * len(per_stream_cells)
    while any(c < len(s) for c, s in zip(cursors, per_stream_cells,
                                         strict=True)):
        candidates = [i for i, s in enumerate(per_stream_cells)
                      if cursors[i] < len(s)]
        pick = rng.choice(candidates)
        merged.append(per_stream_cells[pick][cursors[pick]])
        cursors[pick] += 1

    def feeder():
        for cell in merged:
            yield rig.board.rx_fifo.put(cell)

    spawn(rig.sim, feeder(), "feeder")
    rig.sim.run()

    # Demultiplex host-side by descriptor VCI.
    got = {vci: [] for vci in expected}
    current = {vci: bytearray() for vci in expected}
    for desc in rig.drain_received():
        current[desc.vci] += rig.memory.read(desc.addr, desc.length)
        if desc.end_of_pdu:
            got[desc.vci].append(decode_pdu(bytes(current[desc.vci])))
            current[desc.vci] = bytearray()
    assert got == expected

"""Self-healing fabric: failure detection, deterministic reroute,
and recovery-time SLOs.

Covers the `repro.recovery` control plane end to end: heartbeat
detection of killed elements, masked-ECMP re-resolution with fresh
wire VCIs, graceful degradation when no alternate path survives,
convergence measurement, and byte-identical reports across shard
counts.
"""

import pytest

from repro.atm import SegmentMode
from repro.cluster import Fabric, WorkloadSpec, collect, run_workload
from repro.faults import FaultPlan
from repro.hw.specs import DS5000_200
from repro.recovery import RECOVERY_MODES, RecoveryConfig
from repro.sim import SimulationError
from repro.topology import build_spec
from repro.topology.routing import build_ecmp_tables

CLOS = dict(topology="clos", pods=2, oversubscription=1.0)


def _clos_topo():
    return build_spec("clos", 4, pods=2, oversubscription=1.0)


def _fabric(recovery=None, faults="port=leaf0:2:1@1000", **kw):
    plan = (FaultPlan.parse(faults, topology=_clos_topo())
            if faults else None)
    base = dict(machines=DS5000_200, n_hosts=4,
                segment_mode=SegmentMode.SEQUENCE, **CLOS)
    base.update(kw)
    return Fabric(faults=plan, recovery=recovery, **base)


def _spec(messages=6):
    return WorkloadSpec(pattern="all2all", kind="open", seed=1,
                        message_bytes=2048, rate_mbps=20.0,
                        arrival="poisson",
                        messages_per_client=messages)


def _run(fabric, messages=6):
    result = run_workload(fabric, _spec(messages),
                          max_events=50_000_000)
    return collect(fabric, result)


# -- configuration -------------------------------------------------------------

def test_recovery_config_validation():
    assert RECOVERY_MODES == ("off", "detect", "reroute")
    for mode in RECOVERY_MODES:
        assert RecoveryConfig(mode=mode).mode == mode
    with pytest.raises(SimulationError):
        RecoveryConfig(mode="heal")
    with pytest.raises(SimulationError):
        RecoveryConfig(hb_interval_us=0.0)
    with pytest.raises(SimulationError):
        RecoveryConfig(detect_timeout_us=-1.0)
    with pytest.raises(SimulationError):
        RecoveryConfig(max_retries=0)


def test_recovery_rejected_on_direct_topology():
    with pytest.raises(SimulationError, match="recovery"):
        Fabric(DS5000_200, 2, topology="direct",
               recovery=RecoveryConfig(mode="detect"))


# -- masked ECMP --------------------------------------------------------------

def test_masked_ecmp_avoids_dead_edge():
    topo = _clos_topo()
    # leaf0 (0) reaches leaf1 (1) via spine0 (2) or spine1 (3); with
    # the 0->2 edge dead every flow must route through spine1.
    tables = build_ecmp_tables(topo, dead_edges=((0, 2),))
    for vci in range(4096, 4160):
        path = tables.path(0, 1, vci, 1)
        assert (0, 2) not in zip(path, path[1:])
        assert path == (0, 3, 1)


def test_masked_ecmp_raises_when_no_path_survives():
    topo = _clos_topo()
    tables = build_ecmp_tables(topo, dead_edges=((0, 2), (0, 3)))
    with pytest.raises(SimulationError, match="no route"):
        tables.path(0, 1, 4096, 1)


# -- detection ----------------------------------------------------------------

def test_detect_mode_records_failure_without_rerouting():
    fabric = _fabric(recovery=RecoveryConfig(mode="detect"))
    _run(fabric)
    stats = fabric.recovery_stats()
    assert stats["mode"] == "detect"
    assert stats["counters"]["elements_failed"] == 1
    assert stats["counters"]["flows_rerouted"] == 0
    (el,) = stats["elements"]
    assert el["name"] == "leaf0.t2.l1"
    assert el["kind"] == "port"
    assert el["failed_at_us"] == 1000.0
    # Declared only after the element stayed down a full timeout, and
    # within one extra heartbeat of the earliest possible instant.
    cfg = RecoveryConfig(mode="detect")
    lo = el["failed_at_us"] + cfg.detect_timeout_us
    hi = lo + 2 * cfg.hb_interval_us
    assert lo <= el["detected_at_us"] <= hi
    assert stats["probes_sent"] > 0
    assert stats["recovery_time_us"] is None


def test_detection_is_seed_deterministic():
    reports = []
    for _ in range(2):
        fabric = _fabric(recovery=RecoveryConfig(mode="detect"))
        _run(fabric)
        reports.append(fabric.recovery_stats())
    assert reports[0] == reports[1]


def test_no_recovery_block_without_recovery():
    fabric = _fabric(recovery=None)
    report = _run(fabric)
    assert fabric.recovery_stats() is None
    assert report.recovery is None


# -- reroute ------------------------------------------------------------------

def test_reroute_restores_delivery_after_port_kill():
    """The acceptance bar: >= 90% of offered messages delivered with
    reroute on, strictly more than the same run without recovery."""
    ablation = {}
    for label, recovery in (("off", None),
                            ("reroute", RecoveryConfig(mode="reroute"))):
        fabric = _fabric(recovery=recovery)
        report = _run(fabric)
        wl = report.workload
        ablation[label] = (wl["messages_received"], wl["messages_sent"])
        assert report.conservation["holds"]
    got, sent = ablation["reroute"]
    assert sent == 72
    assert got / sent >= 0.9
    assert got > ablation["off"][0]


def test_reroute_reports_convergence_times():
    fabric = _fabric(recovery=RecoveryConfig(mode="reroute"))
    _run(fabric)
    stats = fabric.recovery_stats()
    assert stats["counters"]["flows_rerouted"] >= 1
    assert stats["counters"]["flows_unrecovered"] == 0
    times = stats["recovery_time_us"]
    assert times is not None and times["n"] >= 1
    assert 0.0 < times["p50"] <= times["p99"] <= times["max"]
    outage = stats["outage_time_us"]
    assert outage["p50"] > times["p50"]   # includes detection latency
    # Rerouted flows carry fresh wire VCIs and a masked-table path.
    for flow in stats["flows"]:
        if flow["status"] != "rerouted":
            continue
        assert flow["wire_vci"] != flow["vci"]
        assert flow["activated_at_us"] >= flow["detected_at_us"]
    # The sender-side sequence numbering migrated with each retarget.
    migrations = sum(h.txp.seq_migrations
                     for h in fabric.hosts if h is not None)
    assert migrations >= 1


def test_dead_downlink_degrades_gracefully():
    """Killing a host's downlink leaves no alternate path: affected
    flows exhaust their retries, are counted no_path, and the run
    still quiesces."""
    fabric = _fabric(recovery=RecoveryConfig(mode="reroute"),
                     faults="port=leaf1:0:1@1000")   # host 2's downlink
    report = _run(fabric)
    assert report.conservation["holds"]
    stats = fabric.recovery_stats()
    assert stats["counters"]["flows_unrecovered"] >= 1
    for flow in stats["flows"]:
        if flow["status"] == "no_path":
            assert flow["dst"] == 2
            assert flow["attempts"] == stats["max_retries"]


# -- shard determinism --------------------------------------------------------

def test_recovery_report_is_shard_identical():
    from repro.cluster.sharded import run_cluster_sharded
    plan = FaultPlan.parse("port=leaf0:2:1@1000", topology=_clos_topo())
    fabric_kwargs = dict(machines=DS5000_200, n_hosts=4,
                         segment_mode=SegmentMode.SEQUENCE,
                         faults=plan,
                         recovery=RecoveryConfig(mode="reroute"), **CLOS)
    plain = Fabric(**fabric_kwargs)
    result = run_workload(plain, _spec(), max_events=50_000_000)
    base = collect(plain, result).to_json()
    for coalesce in (True, False):
        report, _run_info = run_cluster_sharded(
            fabric_kwargs, _spec(), 2, backend="thread",
            coalesce=coalesce)
        assert report.to_json() == base, f"coalesce={coalesce}"


# -- chaos harness ------------------------------------------------------------

def test_chaos_scenarios_include_recovery_and_site_counters():
    from repro.faults.chaos import build_scenarios
    scenarios = {s["name"]: s for s in build_scenarios(seed=1)}
    scen = scenarios["port-kill-reroute"]
    assert scen["expect_recovery"]
    assert scen["fabric_kwargs"]["recovery"].mode == "reroute"


def test_chaos_main_exits_nonzero_on_failure(monkeypatch, capsys):
    from repro.faults import chaos

    def fake_matrix(**_kw):
        return [{"name": "boom", "ok": False,
                 "failures": ["invariant violated"],
                 "shard_counts": [1],
                 "conservation": {"injected": 1, "delivered": 0,
                                  "corrupted": 0, "dropped": 0,
                                  "lost_to_faults": 0, "holds": False},
                 "faults": None, "fault_sites": {}, "recovery": None}]

    monkeypatch.setattr(chaos, "run_matrix", fake_matrix)
    assert chaos.main([]) == 1
    assert "invariant violated" in capsys.readouterr().out
    monkeypatch.setattr(
        chaos, "run_matrix",
        lambda **_kw: [{"name": "fine", "ok": True, "failures": [],
                        "shard_counts": [1],
                        "conservation": {"injected": 1, "delivered": 1,
                                         "corrupted": 0, "dropped": 0,
                                         "lost_to_faults": 0,
                                         "holds": True},
                        "faults": None, "fault_sites": {},
                        "recovery": None}])
    assert chaos.main([]) == 0

#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

Produces Table 1 and Figures 2-4 side by side with the paper's
numbers.  Expect a couple of minutes of wall time; pass ``--quick``
for a coarse (but much faster) sweep.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys
import time

from repro.bench import (
    PAPER_FIGURE_2, PAPER_FIGURE_3, PAPER_FIGURE_4, run_figure2,
    run_figure3, run_figure4, run_table1,
)


def main() -> None:
    quick = "--quick" in sys.argv
    sizes = (1, 4, 16, 64, 256) if quick else \
        (1, 2, 4, 8, 16, 32, 64, 128, 256)
    rounds = 3 if quick else 5

    start = time.time()
    print("=" * 72)
    table1 = run_table1(rounds=rounds)
    print(table1.render())

    for runner, paper in ((run_figure2, PAPER_FIGURE_2),
                          (run_figure3, PAPER_FIGURE_3),
                          (run_figure4, PAPER_FIGURE_4)):
        print()
        print("=" * 72)
        figure = runner(sizes)
        print(figure.render(paper))

    print()
    print("=" * 72)
    print(f"total wall time: {time.time() - start:.0f} s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: two workstations, two OSIRIS boards, back to back.

Builds the paper's measurement topology -- a DECstation 5000/200 pair
joined by four striped 155 Mbps links per direction -- opens a UDP/IP
path bound to a VCI, and exchanges messages.  Prints the round-trip
latency and one-way throughput the rig achieves, plus a tour of the
counters the library exposes.

Run:  python examples/quickstart.py
"""

from repro import BackToBack, DS5000_200
from repro.sim import spawn


def main() -> None:
    net = BackToBack(DS5000_200)
    app_a, app_b = net.open_udp_pair(echo_b=True)

    # --- a few ping-pongs ------------------------------------------------
    rtts = []

    def pinger():
        for size in (1, 1024, 4096):
            start = net.sim.now
            before = len(app_a.receptions)
            yield from app_a.send_length(size)
            while len(app_a.receptions) == before:
                yield app_a.on_receive
            rtts.append((size, net.sim.now - start))

    spawn(net.sim, pinger(), "pinger")
    net.sim.run()

    print("UDP/IP round trips over the simulated OSIRIS pair:")
    for size, rtt in rtts:
        print(f"  {size:5d} B  ->  {rtt:7.1f} us")

    # --- a one-way burst --------------------------------------------------
    app_b.echo = False
    count, size = 30, 16 * 1024

    def burst():
        for _ in range(count):
            yield from app_a.send_length(size)

    start_time = net.sim.now
    first = len(app_b.receptions)
    spawn(net.sim, burst(), "burst")
    net.sim.run()
    received = app_b.receptions[first:]
    elapsed = received[-1].time - start_time
    mbps = sum(r.length for r in received) * 8.0 / elapsed

    print(f"\nOne-way burst: {count} x {size // 1024} KB messages "
          f"=> {mbps:.0f} Mbps")
    print("\nWhat the run cost, on the receiving host:")
    print("  interrupts serviced      : "
          f"{net.b.kernel.interrupts_serviced}  (coalesced under "
          "bursts; one per PDU at light load)")
    print(f"  TURBOchannel utilization : {net.b.tc.utilization():.2f}")
    print("  receive DMA transactions : "
          f"{net.b.board.rx_dma.transactions}")
    print("  pages wired on send path : "
          f"{net.a.kernel.wiring.pages_wired}")
    print(f"  cells on the wire        : {net.link_ab.cells_sent}")


if __name__ == "__main__":
    main()

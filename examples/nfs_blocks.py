#!/usr/bin/env python3
"""An NFS-style block service over the OSIRIS stack.

Section 2.5.2 motivates the page-boundary DMA modification with
'network file system (NFS) traffic', whose PDUs are multiples of the
page size and whose consumers 'expect to see full pages'.  This demo
runs exactly that workload: an RPC block server on one host serving
8 KB page-aligned blocks to a client on the other, over the striped
622 Mbps link.

It reports the block-read latency and throughput, and verifies the
property the paper worried about: every block arrives as full,
byte-exact pages.

Run:  python examples/nfs_blocks.py
"""

from repro import BackToBack, DS5000_200
from repro.sim import spawn
from repro.xkernel.protocols.rpc import RpcClient, RpcProtocol, RpcServer

PAGE = DS5000_200.page_size
BLOCK = 2 * PAGE          # 8 KB NFS blocks
FILE_BLOCKS = 16          # a 128 KB "file"
PROC_READ = 1


def main() -> None:
    net = BackToBack(DS5000_200)

    # --- server on host B ---------------------------------------------------
    drv_b = net.b.driver.open_path(vci=800)
    server = RpcServer(RpcProtocol(net.b.cpu, net.b.sim), drv_b)
    file_blocks = {
        k: bytes([0x20 + k]) * BLOCK for k in range(FILE_BLOCKS)
    }
    server.register(PROC_READ,
                    lambda req: file_blocks[req[0]],
                    service_us=180.0)  # disk-cache hit + VFS work

    # --- client on host A ----------------------------------------------------
    drv_a = net.a.driver.open_path(vci=800)
    client = RpcClient(RpcProtocol(net.a.cpu, net.a.sim), drv_a)

    results = {"blocks": {}, "latencies": []}

    def reader():
        start = net.sim.now
        for k in range(FILE_BLOCKS):
            t0 = net.sim.now
            block = yield from client.call(PROC_READ, bytes([k]))
            results["latencies"].append(net.sim.now - t0)
            results["blocks"][k] = block
        results["elapsed"] = net.sim.now - start

    spawn(net.sim, reader(), "nfs-client")
    net.sim.run()

    # --- verify the 'full pages' property ------------------------------------
    for k in range(FILE_BLOCKS):
        block = results["blocks"][k]
        assert len(block) == BLOCK, "partial block!"
        assert block == file_blocks[k], "corrupted block!"

    lat = results["latencies"]
    total_bytes = FILE_BLOCKS * BLOCK
    mbps = total_bytes * 8.0 / results["elapsed"]
    print(f"Read a {total_bytes // 1024} KB file as {FILE_BLOCKS} x "
          f"{BLOCK // 1024} KB page-aligned blocks over OSIRIS:")
    print(f"  block-read latency : min {min(lat):6.1f}  median "
          f"{sorted(lat)[len(lat) // 2]:6.1f}  max {max(lat):6.1f} us")
    print(f"  serial throughput  : {mbps:6.1f} Mbps "
          "(one outstanding read at a time)")
    print("  every block arrived as full pages: yes")
    print()
    print("The page-boundary DMA rule (section 2.5.2) is what keeps "
          "these\nblocks intact: a DMA burst never crosses a page, so "
          "page-multiple\nPDUs fill pages exactly rather than leaking "
          "into their neighbours.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Incast onto a kernel-bypass server: the fabric meets the ADC.

Eight hosts share one cell switch.  Host 0 runs an NFS-style server
that receives through an *application device channel* (section 3.2 of
the paper) -- the OS grants it VCIs and mapped buffers once, then
every client PDU lands in user space with no system call.  Hosts 1-7
all transmit to it at once: the classic incast fan-in, seven striped
uplinks converging on the four output ports of one switch trunk.

Two runs show the regimes:

* paced clients stay under what the *server board* can absorb --
  everything arrives, the kernel driver touches nothing;
* unpaced clients oversubscribe both bottlenecks: the switch trunk's
  256-cell ports shed cells, and whatever squeezes through still
  overruns the board's 64-cell receive FIFO, so reassembled PDUs fail
  their AAL5 trailer check.  The fabric's cell-conservation identity
  balances exactly either way.

Run:  python examples/cluster_incast.py
"""

from repro.adc import AdcChannelDriver, AdcManager
from repro.cluster import Fabric
from repro.hw import DS5000_200
from repro.sim import Delay, spawn
from repro.xkernel.protocols.testproto import TestProgram

N_HOSTS = 8
MESSAGE_BYTES = 4096
MESSAGES_PER_CLIENT = 8


def build_incast(rate_mbps: float):
    """An 8-host fabric, clients 1..7 aimed at host 0's ADC."""
    fabric = Fabric(DS5000_200, N_HOSTS)
    server = fabric.hosts[0]

    # The OS grants the server one device channel with a VCI per
    # client; after this, the kernel is off the receive data path.
    manager = AdcManager(server.kernel, server.board)
    domain = server.kernel.create_domain("nfs-server")
    grant = manager.open(domain, priority=1, n_vcis=N_HOSTS - 1,
                         n_rx_buffers=32)
    adc = AdcChannelDriver(fabric.sim, server.kernel, server.board,
                           grant, server.driver)

    sinks = []
    for i in range(1, N_HOSTS):
        # Bind the flow's server end to the ADC's granted VCI.
        flow = fabric.open_flow(i, 0, dst_vci=grant.vcis[i - 1])
        session = adc.open_path(flow.dst_vci)
        sinks.append(TestProgram(server.test, session))
        app, _ = fabric.hosts[i].open_raw_path(vci=flow.src_vci)

        def client(app=app, index=i):
            # Stagger starts one cell-time apart so the unpaced run
            # is not a degenerate single burst.
            yield Delay(index * 2.7)
            interval = (MESSAGE_BYTES * 8.0 / rate_mbps
                        if rate_mbps > 0 else 0.0)
            for _ in range(MESSAGES_PER_CLIENT):
                if interval:
                    yield Delay(interval)
                yield from app.send_length(MESSAGE_BYTES)

        spawn(fabric.sim, client(), f"client-{i}")
    return fabric, server, sinks


def run(label: str, rate_mbps: float) -> None:
    fabric, server, sinks = build_incast(rate_mbps)
    fabric.sim.run()

    expected = (N_HOSTS - 1) * MESSAGES_PER_CLIENT
    received = sum(len(s.receptions) for s in sinks)
    conservation = fabric.conservation()
    switch = fabric.switches[0]
    deepest = max(p.max_queue_seen for p in switch.port_stats()
                  if p.trunk_id == 0)

    print(f"{label}:")
    print(f"  messages delivered        : {received}/{expected}")
    print(f"  server kernel-driver PDUs : {server.driver.pdus_received}"
          " (ADC bypassed the kernel)")
    print(f"  deepest server port queue : {deepest} cells "
          f"(cap {switch.port_queue_cells})")
    print(f"  server board FIFO drops   : {server.board.rx_fifo_drops}")
    print(f"  cells: injected {conservation['injected']} = "
          f"delivered {conservation['delivered']} + "
          f"queued {conservation['queued']} + "
          f"dropped {conservation['dropped']}  -> conservation "
          f"{'holds' if conservation['holds'] else 'VIOLATED'}")
    assert conservation["holds"]


def main() -> None:
    # 7 clients x 25 Mbps = 175 Mbps offered, inside what the server's
    # receive path sustains: the fan-in is absorbed, nothing drops.
    run("Paced incast (25 Mbps per client)", 25.0)
    print()
    # Unpaced, every client blasts at link rate: 7 uplinks into one
    # 4-port trunk, and far past the server board -- cells shed at the
    # switch, then at the on-board FIFO.
    run("Unpaced incast (clients at link rate)", 0.0)


if __name__ == "__main__":
    main()

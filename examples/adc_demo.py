#!/usr/bin/env python3
"""Application device channels: kernel-bypass networking, 1994 style.

Demonstrates section 3.2 of the paper:

1. The OS opens an ADC for an application: one transmit/receive
   queue-pair page of the board's dual-port memory mapped into the
   application, a set of VCIs, a priority, and a list of authorized
   physical pages.
2. The application's own channel driver sends and receives with no
   system call and no protection-domain crossing -- the kernel only
   fields the interrupt.
3. The board polices memory access: queueing a buffer outside the
   authorized pages raises a protection-violation interrupt instead of
   letting the application DMA over someone else's memory.
4. Latency through the ADC matches the in-kernel path -- the paper's
   headline result.

Run:  python examples/adc_demo.py
"""

from repro import DS5000_200, Host, Simulator
from repro.adc import AdcChannelDriver, AdcManager
from repro.osiris import Descriptor, FLAG_END_OF_PDU
from repro.sim import spawn
from repro.xkernel.protocols.testproto import TestProgram


def build_loopback_host():
    sim = Simulator()
    host = Host(sim, DS5000_200, reserved_bytes=8 * 1024 * 1024)
    # Loop the board's transmit onto its own receive FIFO.
    host.connect(link=None, deliver=host.board.deliver_cell)
    return sim, host


def main() -> None:
    sim, host = build_loopback_host()

    # -- 1. the OS grants the application a device channel ----------------
    manager = AdcManager(host.kernel, host.board)
    app_domain = host.kernel.create_domain("media-app")
    grant = manager.open(app_domain, priority=1, n_vcis=2,
                         n_rx_buffers=8)
    print("ADC granted to the application:")
    print(f"  channel id        : {grant.channel.channel_id}")
    print(f"  VCIs              : {grant.vcis}")
    print(f"  authorized pages  : {len(grant.channel.allowed_pages)}")
    print(f"  receive buffers   : {len(grant.rx_buffers)} x "
          f"{grant.buffer_bytes} B (wired at setup)")

    # -- 2. user-space send/receive, kernel bypassed ----------------------
    driver = AdcChannelDriver(sim, host.kernel, host.board, grant,
                              host.driver)
    session = driver.open_path()
    app = TestProgram(host.test, session, keep_data=True)

    payload = b"no system call was harmed in this transfer " * 20

    def talk():
        msg = driver.new_message(payload)
        start = sim.now
        yield from session.send(msg)
        while not app.receptions:
            yield app.on_receive
        print(f"\nLoopback transfer of {len(payload)} B through the "
              f"ADC: {sim.now - start:.1f} us")

    spawn(sim, talk(), "app")
    sim.run()
    assert app.receptions[0].data == payload
    print("  kernel driver PDUs on the data path : "
          f"{host.driver.pdus_received} (bypassed)")
    print("  kernel interrupts fielded           : "
          f"{host.kernel.interrupts_serviced} (the kernel still owns "
          "the interrupt)")

    # -- 3. protection: the board rejects unauthorized pages --------------
    evil = Descriptor(addr=0x200000, length=64,
                      flags=FLAG_END_OF_PDU, vci=grant.vcis[0])
    grant.channel.tx_queue.push(evil, by_host=True)
    sim.run()
    print(f"\nForged descriptor at {evil.addr:#x}:")
    print(f"  access violations raised in the app : {driver.violations}")
    print("  PDUs the board transmitted for it   : 0")

    # -- 4. ADC latency == kernel latency ----------------------------------
    sim2, host2 = build_loopback_host()
    app_k, _ = host2.open_raw_path()

    def kernel_ping():
        yield from app_k.send_length(len(payload))

    spawn(sim2, kernel_ping(), "k")
    sim2.run()
    kernel_us = app_k.receptions[0].time
    print(f"\nIn-kernel path, same transfer: {kernel_us:.1f} us")
    print("(Section 4: ADC results were within the error margins of "
          "kernel-to-kernel.)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Cell striping, skew, and the two reassembly strategies.

OSIRIS reaches 622 Mbps by striping cells over four 155 Mbps links.
Links can delay cells relative to each other ("skew"); cells on one
link stay ordered.  This demo shows, per section 2.6 of the paper:

* plain in-order AAL5 reassembly corrupts PDUs under skew -- but the
  CRC catches it (no silent corruption);
* strategy 1 (per-cell sequence numbers) and strategy 2 (four
  concurrent per-link reassemblies + an extra framing bit) both
  survive skew;
* skew destroys the double-cell DMA combining opportunity.

Run:  python examples/skew_reassembly.py
"""

from repro import DS5000_200
from repro.atm import SegmentMode, SkewModel, StripedLink, decode_pdu
from repro.hw import DataCache, PhysicalMemory, TurboChannel
from repro.hw.dma import DmaMode
from repro.osiris import (
    Descriptor, FLAG_END_OF_PDU, OsirisBoard, RxProcessor, TxProcessor,
)
from repro.sim import Delay, Fidelity, Simulator, spawn


def build_pair(mode, skew, rx_dma_mode=DmaMode.SINGLE_CELL):
    sim = Simulator()
    fidelity = Fidelity.full()
    rigs = []
    for side in range(2):
        memory = PhysicalMemory(8 * 1024 * 1024, DS5000_200.page_size,
                                fidelity=fidelity,
                                reserved_bytes=4 * 1024 * 1024)
        cache = DataCache(DS5000_200.cache, memory, fidelity)
        tc = TurboChannel(sim, DS5000_200.bus, name=f"tc{side}")
        rigs.append((memory, OsirisBoard(
            sim, DS5000_200, tc, memory, cache, fidelity=fidelity,
            rx_dma_mode=rx_dma_mode)))
    (tx_mem, tx_board), (rx_mem, rx_board) = rigs
    link = StripedLink(sim, rx_board.deliver_cell, skew=skew)
    TxProcessor(sim, tx_board, link=link, segment_mode=mode)
    rxp = RxProcessor(sim, rx_board, reassembly_mode=mode)
    rx_board.bind_vci(5, 0)
    size = rx_board.spec.recv_buffer_bytes
    for _ in range(8):
        addr = rx_mem.alloc_contiguous(size)
        rx_board.kernel_channel.free_queue.push(
            Descriptor(addr=addr, length=size, vci=0))
    return sim, tx_mem, tx_board, rx_mem, rx_board, rxp


def transfer(mode, skew, pdus, rx_dma_mode=DmaMode.SINGLE_CELL):
    sim, tx_mem, tx_board, rx_mem, rx_board, rxp = build_pair(
        mode, skew, rx_dma_mode)

    def sender():
        for data in pdus:
            addr = tx_mem.alloc_contiguous(len(data))
            tx_mem.write(addr, data)
            tx_board.kernel_channel.tx_queue.push(Descriptor(
                addr=addr, length=len(data),
                flags=FLAG_END_OF_PDU, vci=5))
            yield Delay(800.0)

    spawn(sim, sender(), "sender")
    sim.run()
    received = []
    current = bytearray()
    while True:
        desc = rx_board.kernel_channel.recv_queue.pop(by_host=True)
        if desc is None:
            break
        current += rx_mem.read(desc.addr, desc.length)
        if desc.end_of_pdu:
            try:
                received.append(decode_pdu(bytes(current)))
            except Exception:
                received.append(None)
            current = bytearray()
    return received, rxp


def main() -> None:
    pdus = [bytes([65 + k]) * 3000 for k in range(3)]
    skew = SkewModel.severe(offset_step_us=5.0, jitter_us=12.0, seed=7)

    print("Three 3 KB PDUs over four striped links with severe skew\n")

    got, rxp = transfer(SegmentMode.IN_ORDER, skew, pdus)
    ok = sum(1 for g in got if g in pdus)
    print(f"in-order AAL5   : {ok}/{len(pdus)} PDUs survive, "
          f"{rxp.pdus_errored} CRC/length errors "
          "(misordering detected, never silent)")

    got, rxp = transfer(SegmentMode.SEQUENCE, skew, pdus)
    print(f"strategy 1 (seq): {sum(1 for g in got if g in pdus)}"
          f"/{len(pdus)} PDUs survive, {rxp.pdus_errored} errors")

    got, rxp = transfer(SegmentMode.CONCURRENT, skew, pdus)
    print(f"strategy 2 (4x) : {sum(1 for g in got if g in pdus)}"
          f"/{len(pdus)} PDUs survive, {rxp.pdus_errored} errors")

    print("\nDouble-cell DMA combining (section 2.5.1 vs 2.6):")
    for label, model in (("no skew", SkewModel.none()),
                         ("severe skew", skew)):
        got, rxp = transfer(SegmentMode.SEQUENCE, model, pdus,
                            rx_dma_mode=DmaMode.DOUBLE_CELL)
        total = rxp.combined_dmas + rxp.single_dmas
        rate = rxp.combined_dmas / max(total, 1)
        print(f"  {label:12}: {rate:5.1%} of payload pairs combined "
              "into 88-byte DMAs")
    print("\n'Once skew is introduced, the probability that two "
          "successive cells\n will be received in order is greatly "
          "reduced.'  -- section 2.6")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fbufs: moving network data across protection domains without copies.

A microkernel data path may cross several protection domains (driver,
protocol server, application).  This demo pushes a stream of 16 KB
buffers through a two-domain path three ways -- per-domain copying,
uncached fbufs (page remapping per transfer), and cached fbufs (the
mappings persist for the path) -- and shows why early demultiplexing
on the adaptor matters: it lets the driver pick an already-cached fbuf
for the incoming VCI *before* the data lands.

Run:  python examples/fbuf_pipeline.py
"""

from repro import DS5000_200
from repro.baselines import compare_cross_domain
from repro.fbufs import FbufAllocator
from repro.hw import DataCache, HostCPU, MemorySystem, PhysicalMemory, \
    TurboChannel
from repro.host import HostOS
from repro.sim import Simulator, spawn


def mechanics_demo() -> None:
    """The allocator's cache in slow motion."""
    sim = Simulator()
    memory = PhysicalMemory(16 * 1024 * 1024, 4096,
                            reserved_bytes=2 * 1024 * 1024)
    cache = DataCache(DS5000_200.cache, memory)
    tc = TurboChannel(sim, DS5000_200.bus)
    cpu = HostCPU(sim, DS5000_200, MemorySystem(sim, DS5000_200, tc))
    kernel = HostOS(sim, cpu, cache, memory)

    allocator = FbufAllocator(kernel, cached_paths=16)
    server = kernel.create_domain("protocol-server")
    app = kernel.create_domain("application")
    allocator.register_path(path_id=1, domains=[server, app])

    log = []

    def rig():
        for round_ in range(3):
            fbuf, cached = allocator.allocate(1, npages=4)
            start = sim.now
            yield from allocator.traverse_path(fbuf, 1)
            log.append((round_, cached, sim.now - start))
            allocator.release(fbuf, 1)

    spawn(sim, rig(), "rig")
    sim.run()
    print("One 16 KB buffer through driver -> server -> application:")
    for round_, cached, us in log:
        kind = "cached fbuf  " if cached else "uncached fbuf"
        print(f"  round {round_}: {kind} {us:7.1f} us")
    print("  (the first transfer pays the page mappings; later ones "
          "reuse them)\n")


def throughput_demo() -> None:
    print("Sustained cross-domain throughput, 16 KB buffers "
          "(DECstation 5000/200):")
    print(f"  {'domains':>7} {'cached fbuf':>12} {'uncached':>10} "
          f"{'copying':>9}")
    for domains in (1, 2, 3):
        r = compare_cross_domain(DS5000_200, 16 * 1024,
                                 n_domains=domains, n_buffers=40)
        print(f"  {domains:>7} {r.cached_fbuf_mbps:>10.0f} M "
              f"{r.uncached_fbuf_mbps:>8.0f} M {r.copy_mbps:>7.0f} M")
    print("\n'Being able to use a cached fbuf ... can mean an order of "
          "magnitude\n difference in how fast the data can be "
          "transferred across a domain\n boundary.'  -- section 3.1")


if __name__ == "__main__":
    mechanics_demo()
    throughput_demo()
